package experiments

import (
	"fmt"
	"io"
	"sort"

	"spammass/internal/anomaly"
	"spammass/internal/content"
	"spammass/internal/eval"
	"spammass/internal/forensics"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/webgen"
)

// The extension experiments: the paper's future-work directions and
// robustness claims, made concrete and measured.

// ForensicsResult summarizes farm extraction quality against the
// generator's ground truth.
type ForensicsResult struct {
	TargetsAnalyzed int
	// BoosterPrecision: of the extracted boosting nodes, how many are
	// ground-truth spam (allied farms legitimately surface each
	// other's boosters). BoosterRecall: how much of the target's own
	// planted farm was recovered. Both averaged over true targets.
	BoosterPrecision, BoosterRecall float64
	// AlliancesFound is the number of multi-target alliances
	// recovered; AlliancePurity is the fraction of recovered pairs
	// that are truly allied in the ground truth.
	AlliancesFound int
	// SpamPairs counts grouped pairs of true spam targets;
	// AlliancePurity is the fraction of those that are truly allied.
	SpamPairs      int
	AlliancePurity float64
	// FalsePositiveBoosterShare is the high-mass supporter share
	// behind good candidates (anomalous communities look farm-like).
	FalsePositiveBoosterShare float64
}

// RunForensics extracts the boosting structure behind detected
// candidates (reverse PageRank contributions) and groups alliances,
// scoring both against the planted farms.
func (e *Env) RunForensics(w io.Writer, maxTargets int) (*ForensicsResult, error) {
	section(w, "Extension: farm forensics (reverse contributions, Section 3.2)")
	cands := mass.Detect(e.Est, mass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: e.Cfg.Rho})
	// Analyze the biggest PageRank beneficiaries first — the paper's
	// stated focus, and where an abuse team would start.
	sort.Slice(cands, func(i, j int) bool { return cands[i].ScaledPageRank > cands[j].ScaledPageRank })
	if len(cands) > maxTargets {
		cands = cands[:maxTargets]
	}
	fcfg := forensics.DefaultConfig()
	fcfg.Solver = e.Cfg.Solver
	farms, alliances, err := forensics.ExtractAll(e.World.Graph, e.Est, cands, fcfg)
	if err != nil {
		return nil, err
	}

	// Ground truth: farm community of each spam target.
	farmOf := make(map[graph.NodeID]string)
	trueFarm := make(map[string]map[graph.NodeID]bool)
	trueAlliance := make(map[graph.NodeID]int)
	for _, f := range e.World.Farms {
		name := e.World.Info[f.Target].Community
		farmOf[f.Target] = name
		members := map[graph.NodeID]bool{}
		for _, b := range f.Boosters {
			members[b] = true
		}
		trueFarm[name] = members
		trueAlliance[f.Target] = f.Alliance
	}

	r := &ForensicsResult{}
	var precSum, recSum float64
	spamTargets := 0
	var fpShareSum float64
	fpCount := 0
	for _, f := range farms {
		name, isTarget := farmOf[f.Target]
		if !isTarget {
			fpShareSum += f.BoosterShare
			fpCount++
			continue
		}
		spamTargets++
		planted := trueFarm[name]
		own, spam := 0, 0
		extracted := f.Boosters()
		for _, b := range extracted {
			if planted[b] {
				own++
			}
			if e.World.IsSpam(b) {
				spam++
			}
		}
		if len(extracted) > 0 {
			precSum += float64(spam) / float64(len(extracted))
		}
		if len(planted) > 0 {
			recSum += float64(own) / float64(len(planted))
		}
	}
	r.TargetsAnalyzed = len(farms)
	if spamTargets > 0 {
		r.BoosterPrecision = precSum / float64(spamTargets)
		r.BoosterRecall = recSum / float64(spamTargets)
	}
	if fpCount > 0 {
		r.FalsePositiveBoosterShare = fpShareSum / float64(fpCount)
	}

	// Alliance scoring: of the pairs of true spam targets grouped
	// together, how many are truly allied in the ground truth. Groups
	// of good candidates (interlinked anomalous communities) are
	// reported but not counted against purity — they are the gray
	// zone, not alliance mistakes.
	truePairs, spamPairs := 0, 0
	for _, a := range alliances {
		if len(a.Targets) < 2 {
			continue
		}
		r.AlliancesFound++
		for i := 0; i < len(a.Targets); i++ {
			for j := i + 1; j < len(a.Targets); j++ {
				ai, iok := trueAlliance[a.Targets[i]]
				aj, jok := trueAlliance[a.Targets[j]]
				if !iok || !jok {
					continue
				}
				spamPairs++
				if ai >= 0 && ai == aj {
					truePairs++
				}
			}
		}
	}
	r.SpamPairs = spamPairs
	if spamPairs > 0 {
		r.AlliancePurity = float64(truePairs) / float64(spamPairs)
	}
	fmt.Fprintf(w, "analyzed %d candidates (%d true targets)\n", r.TargetsAnalyzed, spamTargets)
	fmt.Fprintf(w, "extracted boosting nodes: %.3f are truly spam; %.3f of each target's own farm recovered\n", r.BoosterPrecision, r.BoosterRecall)
	fmt.Fprintf(w, "high-mass supporter share behind good (false-positive) candidates: %.3f\n", r.FalsePositiveBoosterShare)
	fmt.Fprintln(w, "(anomalous communities look farm-like by link structure alone — the paper's")
	fmt.Fprintln(w, " gray zone; separating them is exactly what editorial judgment and the")
	fmt.Fprintln(w, " Section 4.4.2 core fix are for)")
	fmt.Fprintf(w, "alliances recovered: %d groups; %d spam-target pairs, purity %.3f\n",
		r.AlliancesFound, r.SpamPairs, r.AlliancePurity)
	return r, nil
}

// AnomalyDiscoveryResult summarizes the automated Section 4.4.2 loop.
type AnomalyDiscoveryResult struct {
	Communities int
	// TopPurity is the fraction of the top community's members that
	// share its dominant ground-truth community.
	TopPurity float64
	// TopCommunity is the dominant ground-truth community name.
	TopCommunity string
	// PrecisionBefore / PrecisionAfter: anomalies-included precision
	// at τ = 0.98 before and after applying the suggested fixes of
	// the top community.
	PrecisionBefore, PrecisionAfter float64
}

// RunAnomalyDiscovery automates the paper's core-maintenance loop:
// discover the anomalous communities from judged high-mass good hosts,
// apply the suggested fix for the highest-priority one, and measure
// the precision gain.
func (e *Env) RunAnomalyDiscovery(w io.Writer) (*AnomalyDiscoveryResult, error) {
	section(w, "Extension: automated anomaly discovery (Section 4.4.2 as an algorithm)")
	oracle := func(x graph.NodeID) anomaly.Judgment {
		info := e.World.Info[x]
		switch {
		case info.Kind == webgen.KindFrontier || info.Kind == webgen.KindIsolated:
			return anomaly.Unknown
		case info.Kind.Spam():
			return anomaly.Spam
		default:
			return anomaly.Good
		}
	}
	communities, err := anomaly.Discover(e.World.Graph, e.Est, oracle, anomaly.DefaultConfig())
	if err != nil {
		return nil, err
	}
	r := &AnomalyDiscoveryResult{Communities: len(communities)}
	if len(communities) == 0 {
		fmt.Fprintln(w, "no anomalous communities found")
		return r, nil
	}
	for i, c := range communities {
		if i >= 5 {
			break
		}
		name, purity := dominantCommunity(e.World, c.Members)
		fmt.Fprintf(w, "community %d: %4d members, total scaled PR %8.0f, dominant %q (purity %.2f), fix: %s ...\n",
			i+1, len(c.Members), c.TotalScaledPageRank, name, purity, e.World.Names[c.SuggestedCoreFix[0]])
	}
	top := communities[0]
	r.TopCommunity, r.TopPurity = dominantCommunity(e.World, top.Members)

	precisionAt := func(est *mass.Estimates) float64 {
		spam, all := 0, 0
		for _, x := range e.T {
			if est.Rel[x] < 0.98 || est.ScaledPageRank(x) < e.Cfg.Rho {
				continue
			}
			info := e.World.Info[x]
			if info.Kind == webgen.KindFrontier || info.Kind == webgen.KindIsolated {
				continue
			}
			all++
			if info.Kind.Spam() {
				spam++
			}
		}
		if all == 0 {
			return 0
		}
		return float64(spam) / float64(all)
	}
	r.PrecisionBefore = precisionAt(e.Est)
	fixed := goodcore.WithExtra(e.Core, top.SuggestedCoreFix)
	est2, err := e.estimateWithCore(fixed.Nodes)
	if err != nil {
		return nil, err
	}
	r.PrecisionAfter = precisionAt(est2)
	fmt.Fprintf(w, "precision (anomalies included) at tau=0.98: %.3f -> %.3f after fixing the top community\n",
		r.PrecisionBefore, r.PrecisionAfter)
	return r, nil
}

func dominantCommunity(w *webgen.World, members []graph.NodeID) (string, float64) {
	counts := map[string]int{}
	for _, x := range members {
		counts[w.Info[x].Community]++
	}
	best, bestCount := "", 0
	for name, c := range counts {
		if c > bestCount {
			best, bestCount = name, c
		}
	}
	return best, float64(bestCount) / float64(len(members))
}

// ContentFilterResult compares detection before and after the content
// filter the paper's conclusion proposes.
type ContentFilterResult struct {
	Before, After struct {
		Candidates int
		Precision  float64
		Recall     float64 // vs spam in T
	}
}

// RunContentFilter trains a content classifier on the judged sample
// and uses it to eliminate false positives from the mass detector's
// candidate list.
func (e *Env) RunContentFilter(w io.Writer) (*ContentFilterResult, error) {
	section(w, "Extension: content analysis eliminating false positives (Section 6)")
	feats, err := content.Synthesize(e.World, content.DefaultSynthesisConfig())
	if err != nil {
		return nil, err
	}
	// Training set: the judged evaluation sample (the labels a search
	// engine would have from the same editorial effort).
	var trainF []content.Features
	var trainY []bool
	for _, h := range eval.Usable(e.Sample) {
		trainF = append(trainF, feats[h.Node])
		trainY = append(trainY, h.Judgment == eval.JudgedSpam)
	}
	clf, err := content.Train(trainF, trainY, content.DefaultTrainConfig())
	if err != nil {
		return nil, err
	}

	cands := mass.Detect(e.Est, mass.DetectConfig{RelMassThreshold: 0.75, ScaledPageRankThreshold: e.Cfg.Rho})
	nodes := make([]graph.NodeID, len(cands))
	for i, c := range cands {
		nodes[i] = c.Node
	}
	kept := clf.FilterCandidates(nodes, feats, 0.25)

	spamInT := 0
	for _, x := range e.T {
		if e.World.IsSpam(x) {
			spamInT++
		}
	}
	score := func(list []graph.NodeID) (int, float64, float64) {
		spam := 0
		for _, x := range list {
			if e.World.IsSpam(x) {
				spam++
			}
		}
		prec, rec := 0.0, 0.0
		if len(list) > 0 {
			prec = float64(spam) / float64(len(list))
		}
		if spamInT > 0 {
			rec = float64(spam) / float64(spamInT)
		}
		return len(list), prec, rec
	}
	r := &ContentFilterResult{}
	r.Before.Candidates, r.Before.Precision, r.Before.Recall = score(nodes)
	r.After.Candidates, r.After.Precision, r.After.Recall = score(kept)
	fmt.Fprintf(w, "mass only (tau=0.75):   %4d candidates, precision %.3f, recall %.3f\n",
		r.Before.Candidates, r.Before.Precision, r.Before.Recall)
	fmt.Fprintf(w, "mass + content filter:  %4d candidates, precision %.3f, recall %.3f\n",
		r.After.Candidates, r.After.Precision, r.After.Recall)
	fmt.Fprintln(w, "(the recall lost is the content-mimicking spam Section 5 warns about;")
	fmt.Fprintln(w, " the precision gained is the conclusion's conjecture, confirmed)")
	return r, nil
}

// AdversarialPoint is one step of the link-purchase sweep.
type AdversarialPoint struct {
	PurchasedLinks int
	RelMass        float64
	Detected       bool // at τ = 0.75
}

// RunAdversarial measures the paper's robustness argument: to evade
// mass-based detection a spammer must buy real links from good hosts,
// and the number required grows with the farm's own boosting (the
// farm's PageRank must be matched by good-contribution). It also
// measures the one real vulnerability: infiltrating the core itself.
func (e *Env) RunAdversarial(w io.Writer, steps []int) ([]AdversarialPoint, error) {
	section(w, "Extension: adversarial robustness (Section 6's claim, measured)")
	median := e.medianFarmTargetInT()
	largest := e.largestFarmTargetInT()
	if median == nil || largest == nil {
		return nil, fmt.Errorf("experiments: no farm target in T")
	}
	sellers := e.linkSellers(steps[len(steps)-1] + 1)

	var out []AdversarialPoint
	for _, farm := range []*webgen.Farm{median, largest} {
		fmt.Fprintf(w, "attacking farm %q: target with %d boosters, scaled PR %.1f, m~ = %.3f\n",
			e.World.Info[farm.Target].Community, len(farm.Boosters),
			e.Est.ScaledPageRank(farm.Target), e.Est.Rel[farm.Target])
		fmt.Fprintf(w, "%-16s %10s %18s\n", "purchased links", "rel mass", "detected(tau=.75)")
		evaded := false
		for _, k := range steps {
			if k > len(sellers) {
				k = len(sellers)
			}
			est, err := e.estimateOnGraph(withPurchasedLinks(e.World.Graph, farm.Target, sellers[:k]))
			if err != nil {
				return nil, err
			}
			pt := AdversarialPoint{
				PurchasedLinks: k,
				RelMass:        est.Rel[farm.Target],
				Detected:       est.Rel[farm.Target] >= 0.75 && est.ScaledPageRank(farm.Target) >= e.Cfg.Rho,
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%-16d %10.3f %18v\n", k, pt.RelMass, pt.Detected)
			if !pt.Detected && !evaded {
				evaded = true
			}
		}
	}

	// Core infiltration: one spam host sneaked into the good core and
	// pointed at the target collapses its mass instantly — which is
	// why the paper argues the actual core must stay secret.
	infiltrator := median.Boosters[0]
	fixed := append(append([]graph.NodeID(nil), e.Core.Nodes...), infiltrator)
	est2, err := e.estimateWithCore(fixed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "core infiltration (1 booster admitted to the core): m~ %.3f -> %.3f\n",
		e.Est.Rel[median.Target], est2.Rel[median.Target])
	fmt.Fprintln(w, "(the evasion price in real good endorsements grows with the farm's boost —")
	fmt.Fprintln(w, " the larger farm needs far more purchased links — while evading via the")
	fmt.Fprintln(w, " core requires knowing and entering it, the paper's secrecy argument)")
	return out, nil
}

// estimateOnGraph recomputes both PageRank vectors on a modified graph
// with the environment's core and settings. The two solves run as one
// batch on a throwaway estimator bound to the modified graph.
func (e *Env) estimateOnGraph(g *graph.Graph) (*mass.Estimates, error) {
	es, err := mass.NewEstimator(g, mass.Options{Solver: e.Cfg.Solver, Gamma: e.Cfg.Gamma})
	if err != nil {
		return nil, err
	}
	defer es.Close()
	return es.EstimateFromCore(e.Core.Nodes)
}

// largestFarmTargetInT picks the biggest farm whose target is in T.
func (e *Env) largestFarmTargetInT() *webgen.Farm {
	inT := make(map[graph.NodeID]bool, len(e.T))
	for _, x := range e.T {
		inT[x] = true
	}
	var best *webgen.Farm
	for i := range e.World.Farms {
		f := &e.World.Farms[i]
		if inT[f.Target] && (best == nil || len(f.Boosters) > len(best.Boosters)) {
			best = f
		}
	}
	return best
}

// medianFarmTargetInT picks the farm whose target is in T with the
// median booster count — a representative heavy-weight farm.
func (e *Env) medianFarmTargetInT() *webgen.Farm {
	inT := make(map[graph.NodeID]bool, len(e.T))
	for _, x := range e.T {
		inT[x] = true
	}
	var farms []webgen.Farm
	for _, f := range e.World.Farms {
		if inT[f.Target] {
			farms = append(farms, f)
		}
	}
	if len(farms) == 0 {
		return nil
	}
	sort.Slice(farms, func(i, j int) bool { return len(farms[i].Boosters) < len(farms[j].Boosters) })
	return &farms[len(farms)/2]
}

// linkSellers returns ordinary good mainstream hosts willing to sell a
// link: the mid-tail of the mainstream popularity range (the web's top
// sites do not sell links; unremarkable blogs and forums do).
func (e *Env) linkSellers(max int) []graph.NodeID {
	var mainstream []graph.NodeID
	for x, info := range e.World.Info {
		if info.Kind == webgen.KindGood && info.Community == "mainstream" {
			mainstream = append(mainstream, graph.NodeID(x))
		}
	}
	// Mainstream IDs are popularity-ordered; skip the famous head.
	lo := len(mainstream) / 10
	sellers := mainstream[lo:]
	if max < len(sellers) {
		// Deterministic stride sample across the tail.
		stride := len(sellers) / max
		if stride < 1 {
			stride = 1
		}
		var out []graph.NodeID
		for i := 0; i < len(sellers) && len(out) < max; i += stride {
			out = append(out, sellers[i])
		}
		return out
	}
	return sellers
}

// withPurchasedLinks rebuilds the graph with extra links from the
// given sellers to the target — the purchased-endorsement evasion
// strategy a spammer aware of mass-based detection would try.
func withPurchasedLinks(g *graph.Graph, target graph.NodeID, sellers []graph.NodeID) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes())
	g.Edges(func(x, y graph.NodeID) bool {
		b.AddEdge(x, y)
		return true
	})
	for _, seller := range sellers {
		if seller != target {
			b.AddEdge(seller, target)
		}
	}
	return b.Build()
}

// CoreGrowthPoint is one step of the incremental core-expansion curve.
type CoreGrowthPoint struct {
	Frac      float64
	CoreSize  int
	Precision float64 // ground-truth precision at τ = 0.9
}

// RunCoreGrowth measures the Section 4.5 deployment advice — "start
// with relatively small cores and incrementally expand them" — as a
// growth curve of detection precision vs core size.
func (e *Env) RunCoreGrowth(w io.Writer) ([]CoreGrowthPoint, error) {
	section(w, "Extension: incremental core growth (Section 4.5 deployment advice)")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "frac", "core size", "precision")
	fracs := []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}
	// Batch the whole growth curve: six core-biased solves sharing one
	// in-neighbor sweep per iteration.
	cores := make([][]graph.NodeID, len(fracs))
	sizes := make([]int, len(fracs))
	for i, frac := range fracs {
		core := e.Core
		if frac < 1 {
			sub, err := goodcore.Subsample(e.Core, frac, e.Cfg.Seed+int64(frac*10000))
			if err != nil {
				return nil, err
			}
			core = sub
		}
		cores[i] = core.Nodes
		sizes[i] = core.Size()
	}
	ests, err := e.estimateWithCores(cores)
	if err != nil {
		return nil, err
	}
	var out []CoreGrowthPoint
	for i, frac := range fracs {
		est := ests[i]
		cands := mass.Detect(est, mass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: e.Cfg.Rho})
		spam := 0
		for _, c := range cands {
			if e.World.IsSpam(c.Node) || e.World.Info[c.Node].Anomalous {
				spam++
			}
		}
		pt := CoreGrowthPoint{Frac: frac, CoreSize: sizes[i]}
		if len(cands) > 0 {
			pt.Precision = float64(spam) / float64(len(cands))
		}
		out = append(out, pt)
		fmt.Fprintf(w, "%-8.2f %10d %10.3f\n", frac, pt.CoreSize, pt.Precision)
	}
	fmt.Fprintln(w, "(precision counts known anomalies as hits: growing the core mainly removes")
	fmt.Fprintln(w, " honest false positives, so small cores are a viable starting deployment)")
	return out, nil
}
