package delta

import (
	"fmt"
	"testing"

	"spammass/internal/graph"
)

// shardPair returns two host names owned by different shards and two
// owned by the same shard, under the given shard count, so the split
// tests do not depend on hash luck.
func shardPair(t *testing.T, shards int) (crossA, crossB, sameA, sameB string) {
	t.Helper()
	byShard := make(map[int][]string)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("split%02d.example", i)
		s := graph.ShardOf(name, shards)
		byShard[s] = append(byShard[s], name)
	}
	var same []string
	for _, names := range byShard {
		if len(names) >= 2 {
			same = names
			break
		}
	}
	if same == nil || len(byShard) < 2 {
		t.Fatal("could not find shard-colocated and shard-crossing host names")
	}
	other := ""
	for _, names := range byShard {
		if graph.ShardOf(names[0], shards) != graph.ShardOf(same[0], shards) {
			other = names[0]
			break
		}
	}
	return same[0], other, same[0], same[1]
}

func TestSplitByShard(t *testing.T) {
	const shards = 3
	crossA, crossB, sameA, sameB := shardPair(t, shards)
	b := &Batch{Ops: []Op{
		AddHostOp(crossA),
		RemoveHostOp(crossB),
		AddEdgeOp(sameA, sameB),
		RemoveEdgeOp(sameB, sameA),
		AddEdgeOp(crossA, crossB), // cross-shard: dropped
	}}
	s, err := SplitByShard(b, shards)
	if err != nil {
		t.Fatal(err)
	}
	if s.CrossEdges != 1 {
		t.Fatalf("CrossEdges = %d, want 1", s.CrossEdges)
	}
	total := 0
	for shard, part := range s.Parts {
		if part == nil {
			continue
		}
		total += part.NumOps()
		for _, op := range part.Ops {
			if graph.ShardOf(op.Src, shards) != shard {
				t.Fatalf("op %s landed on shard %d, owner is %d", op, shard, graph.ShardOf(op.Src, shards))
			}
			if op.Kind == AddEdge || op.Kind == RemoveEdge {
				if graph.ShardOf(op.Dst, shards) != shard {
					t.Fatalf("edge op %s on shard %d has foreign destination", op, shard)
				}
			}
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("shard %d part invalid: %v", shard, err)
		}
	}
	if total != len(b.Ops)-1 {
		t.Fatalf("parts hold %d ops, want %d (input minus the dropped cross edge)", total, len(b.Ops)-1)
	}
	touched := s.Touched()
	if len(touched) == 0 || len(touched) > shards {
		t.Fatalf("Touched() = %v", touched)
	}
	for i := 1; i < len(touched); i++ {
		if touched[i] <= touched[i-1] {
			t.Fatalf("Touched() not ascending: %v", touched)
		}
	}
}

func TestSplitByShardSingleShardKeepsEverything(t *testing.T) {
	b := &Batch{Ops: []Op{
		AddHostOp("a.example"),
		AddEdgeOp("b.example", "c.example"),
	}}
	s, err := SplitByShard(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CrossEdges != 0 {
		t.Fatalf("single shard dropped %d edges", s.CrossEdges)
	}
	if s.Parts[0] == nil || s.Parts[0].NumOps() != len(b.Ops) {
		t.Fatalf("single-shard split must keep all ops, got %v", s.Parts[0])
	}
}

func TestSplitByShardRejectsInvalid(t *testing.T) {
	if _, err := SplitByShard(&Batch{Ops: []Op{{Kind: AddEdge, Src: "x", Dst: "x"}}}, 2); err == nil {
		t.Fatal("self-edge must fail validation before splitting")
	}
	if _, err := SplitByShard(&Batch{}, 0); err == nil {
		t.Fatal("zero shards must be rejected")
	}
}
