package delta

import (
	"fmt"

	"spammass/internal/graph"
)

// Split is one batch divided by owning shard: Parts[s] holds the ops
// shard s must apply (nil when the batch does not touch s), and
// CrossEdges counts the edge ops that were dropped because their
// endpoints hash to different shards. Shard-local graphs hold only
// intra-shard edges by construction (graph.PartitionHosts applies the
// same rule at partition time), so a cross-shard edge op has no edge
// to mutate on any shard; dropping it keeps the split consistent with
// the partitioned graphs instead of producing guaranteed conflicts.
type Split struct {
	Parts      []*Batch
	CrossEdges int
}

// Touched returns the shard indexes with a non-empty part, ascending.
func (s *Split) Touched() []int {
	var out []int
	for i, p := range s.Parts {
		if p != nil && p.NumOps() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// SplitByShard divides b into per-shard sub-batches using the shared
// partitioner (graph.ShardOf over host names): host ops go to the
// shard owning Src, edge ops to the common shard of both endpoints.
// Cross-shard edge ops are counted and dropped, not errors — a churn
// feed diffs whole-graph generations and cannot know the partition.
// The batch is validated first; op order within each part preserves
// the input order, so a valid batch splits into valid parts.
func SplitByShard(b *Batch, shards int) (*Split, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("delta: split into %d shards", shards)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	s := &Split{Parts: make([]*Batch, shards)}
	part := func(i int) *Batch {
		if s.Parts[i] == nil {
			s.Parts[i] = &Batch{}
		}
		return s.Parts[i]
	}
	for _, op := range b.Ops {
		owner := graph.ShardOf(op.Src, shards)
		switch op.Kind {
		case AddHost, RemoveHost:
			part(owner).Ops = append(part(owner).Ops, op)
		case AddEdge, RemoveEdge:
			if graph.ShardOf(op.Dst, shards) != owner {
				s.CrossEdges++
				continue
			}
			part(owner).Ops = append(part(owner).Ops, op)
		}
	}
	return s, nil
}
