package delta_test

import (
	"math/rand"
	"testing"

	"spammass/internal/delta"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/webgen"
)

// benchChurn holds one prepared incremental-refresh scenario: a 10k
// host world, its previous-generation estimates, and a 1% edge-churn
// batch already applied.
type benchChurn struct {
	prev    *mass.Estimates
	res     *delta.Result
	newCore []graph.NodeID
}

// setupChurn10k builds the scenario the incremental path is for: a 10k
// host web with a good core, estimated once, then perturbed by ~1%
// edge churn (half removals, half fresh random edges).
func setupChurn10k(b *testing.B) *benchChurn {
	b.Helper()
	w, err := webgen.Generate(webgen.DefaultConfig(10000))
	if err != nil {
		b.Fatal(err)
	}
	c, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		b.Fatal(err)
	}
	h, err := graph.NewHostGraph(w.Graph, w.Names)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := mass.EstimateFromCore(h.Graph, c.Nodes, mass.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	const rate = 0.01
	batch := &delta.Batch{}
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		if rng.Float64() < rate/2 {
			batch.Ops = append(batch.Ops, delta.RemoveEdgeOp(h.Names[x], h.Names[y]))
		}
		return true
	})
	n := h.Graph.NumNodes()
	target := int(float64(h.Graph.NumEdges()) * rate / 2)
	for added := 0; added < target; {
		x := graph.NodeID(rng.Intn(n))
		y := graph.NodeID(rng.Intn(n))
		if x == y || h.Graph.HasEdge(x, y) {
			continue
		}
		batch.Ops = append(batch.Ops, delta.AddEdgeOp(h.Names[x], h.Names[y]))
		added++
	}
	res, err := delta.Apply(h, batch.Dedup())
	if err != nil {
		b.Fatal(err)
	}
	return &benchChurn{prev: prev, res: res, newCore: res.RemapNodes(c.Nodes)}
}

// BenchmarkColdRefresh10k is the baseline an incremental refresh is
// judged against: a from-scratch estimation of the churned graph.
func BenchmarkColdRefresh10k(b *testing.B) {
	s := setupChurn10k(b)
	b.ResetTimer()
	var est *mass.Estimates
	var err error
	for i := 0; i < b.N; i++ {
		if est, err = mass.EstimateFromCore(s.res.Hosts.Graph, s.newCore, mass.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if est.SolveStats != nil {
		b.ReportMetric(float64(est.SolveStats.Iterations), "iters")
	}
}

// BenchmarkIncrementalRefresh10k measures the delta path end to end:
// remap the previous generation's vectors onto the churned node set,
// push-repair them, and re-solve warm-started. The timed loop includes
// the remap and repair — the full cost a delta-driven refresh pays —
// and the reported iters metric is what the ≥2x acceptance claim is
// pinned on (compare against BenchmarkColdRefresh10k).
func BenchmarkIncrementalRefresh10k(b *testing.B) {
	s := setupChurn10k(b)
	opts := mass.DefaultOptions()
	es, err := mass.NewEstimator(s.res.Hosts.Graph, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer es.Close()
	b.ResetTimer()
	var est *mass.Estimates
	for i := 0; i < b.N; i++ {
		// Refine mutates the warm vectors in place, so each iteration
		// rebuilds them from the previous generation, as a real refresh
		// would.
		warm, err := mass.RemapWarmStart(s.prev, s.res.Remap, s.res.Hosts.Graph.NumNodes(), s.newCore, opts.Gamma)
		if err != nil {
			b.Fatal(err)
		}
		if est, err = es.EstimateFromCoreWarm(s.newCore, warm); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if est.SolveStats != nil {
		b.ReportMetric(float64(est.SolveStats.Iterations), "iters")
	}
}
