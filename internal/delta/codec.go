package delta

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Text format, mirroring the graph package's edge-list codec: a header
// line "delta <version>" followed by one op per line —
//
//	+h <host>          add host
//	-h <host>          remove host (and its incident edges)
//	+e <src> <dst>     add edge
//	-e <src> <dst>     remove edge
//
// Lines starting with '#' are comments; blank lines are ignored. Hosts
// are identified by name, the identifier that is stable across graph
// generations (node IDs are renumbered by Apply).
const textVersion = 1

// WriteText writes b in the line-oriented text format.
func WriteText(w io.Writer, b *Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "delta %d\n", textVersion); err != nil {
		return err
	}
	for _, op := range b.Ops {
		if _, err := fmt.Fprintln(bw, op.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText. The returned
// batch passes Validate; cross-op conflicts are still Apply's to find.
func ReadText(r io.Reader) (*Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := &Batch{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if !sawHeader {
			var version int
			if len(fields) != 2 || fields[0] != "delta" {
				return nil, fmt.Errorf("delta: line %d: expected header \"delta <version>\", got %q", line, text)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &version); err != nil {
				return nil, fmt.Errorf("delta: line %d: bad version: %w", line, err)
			}
			if version != textVersion {
				return nil, fmt.Errorf("delta: line %d: unsupported version %d", line, version)
			}
			sawHeader = true
			continue
		}
		var op Op
		switch fields[0] {
		case "+h", "-h":
			if len(fields) != 2 {
				return nil, fmt.Errorf("delta: line %d: host op wants one name, got %q", line, text)
			}
			op = Op{Kind: AddHost, Src: fields[1]}
			if fields[0] == "-h" {
				op.Kind = RemoveHost
			}
		case "+e", "-e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("delta: line %d: edge op wants two names, got %q", line, text)
			}
			op = Op{Kind: AddEdge, Src: fields[1], Dst: fields[2]}
			if fields[0] == "-e" {
				op.Kind = RemoveEdge
			}
		default:
			return nil, fmt.Errorf("delta: line %d: unknown op %q", line, fields[0])
		}
		if err := op.validate(); err != nil {
			return nil, fmt.Errorf("delta: line %d: %w", line, err)
		}
		b.Ops = append(b.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("delta: empty input, missing header")
	}
	return b, nil
}

// ReadFile loads one batch from a delta file.
func ReadFile(path string) (*Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadText(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// WriteFile writes one batch to a delta file.
func WriteFile(path string, b *Batch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteText(f, b); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
