// Package delta is the graph-churn ingestion layer: it represents a
// batch of host-graph mutations — edges and hosts appearing and
// disappearing, the "spam nodes come and go" churn of Section 3.4 — as
// a typed mutation log, and applies a batch to an immutable
// graph.HostGraph in one merge pass, producing the next graph
// generation plus the node remapping that lets downstream consumers
// (the mass estimator's warm starts, the serving layer's snapshots)
// carry state forward instead of recomputing from scratch.
//
// Semantics are order-independent within a batch: a batch describes
// the net difference between two graph generations, not a replayed
// edit script. Identical duplicate ops collapse silently; ops that
// contradict each other (adding and removing the same edge, adding a
// host that exists, removing an edge that does not) are conflicts and
// fail validation, so a malformed delta can never be half-applied.
package delta

import (
	"fmt"
	"strings"
)

// Kind enumerates the mutation types.
type Kind uint8

// Mutation kinds. Edge ops name both endpoints; host ops name one.
const (
	// AddEdge inserts the directed edge (Src, Dst). Unknown endpoint
	// hosts are created implicitly — a newly crawled host usually
	// appears together with its links.
	AddEdge Kind = iota
	// RemoveEdge deletes the directed edge (Src, Dst), which must
	// exist.
	RemoveEdge
	// AddHost creates the (isolated) host Src, which must not exist.
	AddHost
	// RemoveHost deletes the host Src and all its incident edges.
	RemoveHost
)

func (k Kind) String() string {
	switch k {
	case AddEdge:
		return "+e"
	case RemoveEdge:
		return "-e"
	case AddHost:
		return "+h"
	case RemoveHost:
		return "-h"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Op is one mutation. Hosts are identified by name (the stable
// identifier across graph generations; node IDs are renumbered by
// Apply). Dst is empty for host ops.
type Op struct {
	Kind Kind
	Src  string
	Dst  string
}

func (o Op) String() string {
	if o.Kind == AddHost || o.Kind == RemoveHost {
		return fmt.Sprintf("%s %s", o.Kind, o.Src)
	}
	return fmt.Sprintf("%s %s %s", o.Kind, o.Src, o.Dst)
}

// Batch is one atomic group of mutations: Apply either produces the
// fully mutated next generation or fails without side effects.
type Batch struct {
	Ops []Op
}

// Edge convenience constructors.

// AddEdgeOp returns a +e op.
func AddEdgeOp(src, dst string) Op { return Op{Kind: AddEdge, Src: src, Dst: dst} }

// RemoveEdgeOp returns a -e op.
func RemoveEdgeOp(src, dst string) Op { return Op{Kind: RemoveEdge, Src: src, Dst: dst} }

// AddHostOp returns a +h op.
func AddHostOp(name string) Op { return Op{Kind: AddHost, Src: name} }

// RemoveHostOp returns a -h op.
func RemoveHostOp(name string) Op { return Op{Kind: RemoveHost, Src: name} }

// NumOps returns the number of ops in the batch.
func (b *Batch) NumOps() int { return len(b.Ops) }

// validName rejects names the line-oriented codec cannot represent:
// empty strings, whitespace, and the comment marker.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("delta: empty host name")
	}
	if strings.ContainsAny(name, " \t\n\r") {
		return fmt.Errorf("delta: host name %q contains whitespace", name)
	}
	if name[0] == '#' {
		return fmt.Errorf("delta: host name %q starts with comment marker", name)
	}
	return nil
}

// Validate checks every op in isolation: known kind, codec-safe host
// names, no self-edges, Dst present exactly for edge ops. Cross-op
// conflicts (duplicate host additions, contradictory edge ops) are
// detected by Apply, which has the base graph to resolve names
// against.
func (b *Batch) Validate() error {
	for i, op := range b.Ops {
		if err := op.validate(); err != nil {
			return fmt.Errorf("delta: op %d: %w", i, err)
		}
	}
	return nil
}

func (o Op) validate() error {
	switch o.Kind {
	case AddEdge, RemoveEdge:
		if err := validName(o.Src); err != nil {
			return err
		}
		if err := validName(o.Dst); err != nil {
			return err
		}
		if o.Src == o.Dst {
			return fmt.Errorf("delta: self-edge on host %q", o.Src)
		}
	case AddHost, RemoveHost:
		if err := validName(o.Src); err != nil {
			return err
		}
		if o.Dst != "" {
			return fmt.Errorf("delta: host op %s carries destination %q", o.Kind, o.Dst)
		}
	default:
		return fmt.Errorf("delta: unknown op kind %d", int(o.Kind))
	}
	return nil
}

// Dedup returns a batch with identical duplicate ops collapsed,
// preserving first-occurrence order. Contradictory ops are NOT
// resolved — they remain and fail at Apply, by design: a delta feed
// that contradicts itself is corrupt, not ambiguous.
func (b *Batch) Dedup() *Batch {
	seen := make(map[Op]bool, len(b.Ops))
	out := &Batch{Ops: make([]Op, 0, len(b.Ops))}
	for _, op := range b.Ops {
		if seen[op] {
			continue
		}
		seen[op] = true
		out.Ops = append(out.Ops, op)
	}
	return out
}

// Stats summarizes what one Apply changed. Edge counts include the
// edges implicitly dropped by host removals.
type Stats struct {
	HostsAdded   int   `json:"hosts_added"`
	HostsRemoved int   `json:"hosts_removed"`
	EdgesAdded   int64 `json:"edges_added"`
	EdgesRemoved int64 `json:"edges_removed"`
}

// AppliedEdges returns the total number of edge mutations realized,
// additions plus removals — the unit of the delta.applied_edges
// serving metric.
func (s Stats) AppliedEdges() int64 { return s.EdgesAdded + s.EdgesRemoved }

func (s Stats) String() string {
	return fmt.Sprintf("+%dh -%dh +%de -%de", s.HostsAdded, s.HostsRemoved, s.EdgesAdded, s.EdgesRemoved)
}
