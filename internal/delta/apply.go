package delta

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
)

// Result carries everything one applied batch produced: the next graph
// generation, the node remapping that carries old per-node state
// (PageRank vectors, core membership) forward, and the inverse batch.
type Result struct {
	// Hosts is the mutated host graph.
	Hosts *graph.HostGraph
	// Remap[x] is the new node ID of old node x, or -1 when the batch
	// removed it. Surviving nodes keep their relative order — the
	// remapping is monotone — so remapping a sorted ID list keeps it
	// sorted, and hosts the batch created occupy the IDs after the
	// last survivor.
	Remap []int64
	// NewNodes lists the new-graph node IDs of hosts the batch
	// created, ascending.
	NewNodes []graph.NodeID
	// Stats summarizes the realized mutations.
	Stats Stats
	// Inverse undoes the application: applying Inverse to Hosts
	// restores the original graph up to node renumbering (host names
	// and the name-level edge set are identical; hosts that were
	// removed and restored move to the end of the ID space).
	Inverse *Batch
}

// RemapNodes maps old node IDs onto the new graph, dropping the ones
// the batch removed. Input order is preserved; a sorted input stays
// sorted because the remapping is monotone.
func (r *Result) RemapNodes(ids []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(ids))
	for _, x := range ids {
		if nx := r.Remap[x]; nx >= 0 {
			out = append(out, graph.NodeID(nx))
		}
	}
	return out
}

// pairKey identifies one edge in the mixed old/new endpoint space used
// during resolution: old survivors keep their old ID, created hosts
// get n+index.
type pairKey struct{ src, dst int64 }

// edgeOp is one resolved edge mutation: the original op (for error
// messages and inverse construction) plus its endpoint tokens.
type edgeOp struct {
	key pairKey
	op  Op
}

// Apply applies the batch to h and returns the next graph generation.
// It is one merge pass: O(n + m) over the old CSR plus O(|Δ| log |Δ|)
// to organize the mutations, never a full rebuild. The result is
// byte-identical to rebuilding the graph from the mutated edge list
// (same CSR arrays, same host index) — the parity tests hold Apply to
// exactly that.
//
// Conflict rules (order-independent within the batch; identical
// duplicate ops collapse first):
//
//   - AddHost of an existing host, or of a host removed by this same
//     batch, is a conflict.
//   - RemoveHost of an unknown host is a conflict; removing a host
//     drops all its incident edges implicitly.
//   - AddEdge creates unknown endpoint hosts implicitly, but may not
//     reference a host this batch removes, and may not insert an edge
//     that already exists.
//   - RemoveEdge must name an existing edge between hosts this batch
//     keeps (edges incident to removed hosts are dropped implicitly,
//     so naming them is a conflict, not a convenience).
//   - Adding and removing the same edge in one batch is a conflict.
//
// On any conflict the graph is untouched and the error names the op.
func Apply(h *graph.HostGraph, b *Batch) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	b = b.Dedup()
	g := h.Graph
	n := g.NumNodes()

	// Pass 1: host ops. Names resolve against the old index only; the
	// created-host namespace is tracked separately.
	removed := make([]bool, n)
	removedCount := 0
	created := make(map[string]int64) // name -> created index
	var createdNames []string
	for _, op := range b.Ops {
		switch op.Kind {
		case AddHost:
			if _, exists := h.NodeByName(op.Src); exists {
				return nil, fmt.Errorf("delta: %s: host already exists", op)
			}
			if _, dup := created[op.Src]; dup {
				return nil, fmt.Errorf("delta: %s: host added twice", op)
			}
			created[op.Src] = int64(len(createdNames))
			createdNames = append(createdNames, op.Src)
		case RemoveHost:
			x, ok := h.NodeByName(op.Src)
			if !ok {
				return nil, fmt.Errorf("delta: %s: unknown host", op)
			}
			if removed[x] {
				return nil, fmt.Errorf("delta: %s: host removed twice", op)
			}
			removed[x] = true
			removedCount++
		}
	}
	// A batch may not remove and re-create one name: that is two
	// generations, not one delta.
	for name := range created {
		if x, ok := h.NodeByName(name); ok && removed[x] {
			return nil, fmt.Errorf("delta: host %q removed and re-added in one batch", name)
		}
	}

	// Pass 2: edge ops, resolved to the mixed endpoint space. resolve
	// may create hosts (AddEdge only), so the created set keeps
	// growing; pairs detects contradictory ops on one edge.
	resolve := func(op Op, name string, create bool) (int64, error) {
		if x, ok := h.NodeByName(name); ok {
			if removed[x] {
				return 0, fmt.Errorf("delta: %s: references removed host %q", op, name)
			}
			return int64(x), nil
		}
		if j, ok := created[name]; ok {
			return int64(n) + j, nil
		}
		if !create {
			return 0, fmt.Errorf("delta: %s: unknown host %q", op, name)
		}
		j := int64(len(createdNames))
		created[name] = j
		createdNames = append(createdNames, name)
		return int64(n) + j, nil
	}
	pairs := make(map[pairKey]Kind)
	var adds, removes []edgeOp
	for _, op := range b.Ops {
		if op.Kind != AddEdge && op.Kind != RemoveEdge {
			continue
		}
		create := op.Kind == AddEdge
		src, err := resolve(op, op.Src, create)
		if err != nil {
			return nil, err
		}
		dst, err := resolve(op, op.Dst, create)
		if err != nil {
			return nil, err
		}
		key := pairKey{src, dst}
		if prev, seen := pairs[key]; seen {
			// Identical ops were deduplicated, so a second op on the
			// same pair is always the contradictory kind.
			return nil, fmt.Errorf("delta: %s conflicts with earlier %s op on the same edge", op, prev)
		}
		pairs[key] = op.Kind
		bothOld := src < int64(n) && dst < int64(n)
		switch op.Kind {
		case AddEdge:
			if bothOld && g.HasEdge(graph.NodeID(src), graph.NodeID(dst)) {
				return nil, fmt.Errorf("delta: %s: edge already exists", op)
			}
			adds = append(adds, edgeOp{key, op})
		case RemoveEdge:
			if !bothOld || !g.HasEdge(graph.NodeID(src), graph.NodeID(dst)) {
				return nil, fmt.Errorf("delta: %s: edge does not exist", op)
			}
			removes = append(removes, edgeOp{key, op})
		}
	}

	// Node renumbering: survivors first, in old order, then created
	// hosts in first-appearance order.
	remap := make([]int64, n)
	origOf := make([]graph.NodeID, 0, n-removedCount)
	for x := 0; x < n; x++ {
		if removed[x] {
			remap[x] = -1
			continue
		}
		remap[x] = int64(len(origOf))
		origOf = append(origOf, graph.NodeID(x))
	}
	base := int64(len(origOf))
	n2 := int(base) + len(createdNames)
	toNew := func(t int64) graph.NodeID {
		if t < int64(n) {
			return graph.NodeID(remap[t])
		}
		return graph.NodeID(base + (t - int64(n)))
	}

	// Organize the mutations per source node: additions in new-ID
	// space, removals in old-ID space (they are matched against the
	// old adjacency during the merge).
	addsBySrc := make(map[graph.NodeID][]graph.NodeID, len(adds))
	for _, e := range adds {
		s := toNew(e.key.src)
		addsBySrc[s] = append(addsBySrc[s], toNew(e.key.dst))
	}
	for _, l := range addsBySrc {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	delsBySrc := make(map[graph.NodeID][]graph.NodeID, len(removes))
	for _, e := range removes {
		delsBySrc[graph.NodeID(e.key.src)] = append(delsBySrc[graph.NodeID(e.key.src)], graph.NodeID(e.key.dst))
	}
	for _, l := range delsBySrc {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	// The merge pass. Surviving nodes stream their old adjacency —
	// minus removed hosts and explicit removals, remapped, still
	// ascending because the remapping is monotone — merged with their
	// sorted additions. Created hosts contribute their additions only.
	stats := Stats{HostsAdded: len(createdNames), HostsRemoved: removedCount, EdgesAdded: int64(len(adds))}
	outStart := make([]int64, n2+1)
	outAdj := make([]graph.NodeID, 0, int(g.NumEdges())+len(adds))
	for y := 0; y < n2; y++ {
		var merged, pending []graph.NodeID
		if int64(y) < base {
			x := origOf[y]
			dels := delsBySrc[x]
			for _, dst := range g.OutNeighbors(x) {
				if removed[dst] {
					stats.EdgesRemoved++
					continue
				}
				for len(dels) > 0 && dels[0] < dst {
					dels = dels[1:]
				}
				if len(dels) > 0 && dels[0] == dst {
					dels = dels[1:]
					stats.EdgesRemoved++
					continue
				}
				merged = append(merged, graph.NodeID(remap[dst]))
			}
			pending = addsBySrc[graph.NodeID(y)]
		} else {
			pending = addsBySrc[graph.NodeID(y)]
		}
		// Two-pointer merge of the surviving (remapped) neighbors with
		// the additions; both ascending, disjoint by validation.
		i, j := 0, 0
		for i < len(merged) || j < len(pending) {
			switch {
			case j == len(pending) || (i < len(merged) && merged[i] < pending[j]):
				outAdj = append(outAdj, merged[i])
				i++
			default:
				outAdj = append(outAdj, pending[j])
				j++
			}
		}
		outStart[y+1] = int64(len(outAdj))
	}
	// Out-links of removed hosts never entered the merge; count them.
	for x := 0; x < n; x++ {
		if removed[x] {
			stats.EdgesRemoved += int64(g.OutDegree(graph.NodeID(x)))
		}
	}

	g2, err := graph.FromCSR(outStart, outAdj)
	if err != nil {
		return nil, fmt.Errorf("delta: merged graph invalid: %w", err)
	}
	names2 := make([]string, 0, n2)
	for _, x := range origOf {
		names2 = append(names2, h.Names[x])
	}
	names2 = append(names2, createdNames...)
	h2, err := graph.NewHostGraph(g2, names2)
	if err != nil {
		return nil, fmt.Errorf("delta: merged host graph invalid: %w", err)
	}

	newNodes := make([]graph.NodeID, len(createdNames))
	for j := range createdNames {
		newNodes[j] = graph.NodeID(base + int64(j))
	}
	res := &Result{
		Hosts:    h2,
		Remap:    remap,
		NewNodes: newNodes,
		Stats:    stats,
		Inverse:  inverse(h, removed, createdNames, adds, removes, int64(n)),
	}
	return res, nil
}

// inverse constructs the batch undoing an application: created hosts
// are removed (implicitly dropping the edges added to them), removed
// hosts are re-added together with every incident edge they lost, and
// the remaining explicit edge ops flip.
func inverse(h *graph.HostGraph, removed []bool, createdNames []string, adds, removes []edgeOp, n int64) *Batch {
	inv := &Batch{}
	for _, name := range createdNames {
		inv.Ops = append(inv.Ops, RemoveHostOp(name))
	}
	for x := 0; x < len(removed); x++ {
		if !removed[x] {
			continue
		}
		inv.Ops = append(inv.Ops, AddHostOp(h.Names[x]))
		// Every out-link, including those into other removed hosts
		// (each such edge appears in exactly one out list), and the
		// in-links from survivors.
		for _, dst := range h.Graph.OutNeighbors(graph.NodeID(x)) {
			inv.Ops = append(inv.Ops, AddEdgeOp(h.Names[x], h.Names[dst]))
		}
		for _, src := range h.Graph.InNeighbors(graph.NodeID(x)) {
			if !removed[src] {
				inv.Ops = append(inv.Ops, AddEdgeOp(h.Names[src], h.Names[x]))
			}
		}
	}
	createdSet := func(t int64) bool { return t >= n }
	for _, e := range adds {
		if createdSet(e.key.src) || createdSet(e.key.dst) {
			continue // dropped implicitly by the created host's removal
		}
		inv.Ops = append(inv.Ops, RemoveEdgeOp(e.op.Src, e.op.Dst))
	}
	for _, e := range removes {
		inv.Ops = append(inv.Ops, AddEdgeOp(e.op.Src, e.op.Dst))
	}
	return inv
}
