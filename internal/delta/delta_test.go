package delta

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"spammass/internal/graph"
)

// hostGraph builds a HostGraph from name-level edges; isolated extras
// can be listed in alone.
func hostGraph(t *testing.T, edges [][2]string, alone ...string) *graph.HostGraph {
	t.Helper()
	idx := map[string]graph.NodeID{}
	var names []string
	intern := func(name string) graph.NodeID {
		if x, ok := idx[name]; ok {
			return x
		}
		x := graph.NodeID(len(names))
		idx[name] = x
		names = append(names, name)
		return x
	}
	for _, e := range edges {
		intern(e[0])
		intern(e[1])
	}
	for _, name := range alone {
		intern(name)
	}
	b := graph.NewBuilder(len(names))
	for _, e := range edges {
		b.AddEdge(idx[e[0]], idx[e[1]])
	}
	h, err := graph.NewHostGraph(b.Build(), names)
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	return h
}

// nameEdges returns the name-level edge set "src>dst", sorted, plus
// the sorted name set — the renumbering-independent identity of a
// host graph.
func nameEdges(h *graph.HostGraph) (edges, names []string) {
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		edges = append(edges, h.Names[x]+">"+h.Names[y])
		return true
	})
	names = append(names, h.Names...)
	sort.Strings(edges)
	sort.Strings(names)
	return edges, names
}

func sameWorld(t *testing.T, got, want *graph.HostGraph, what string) {
	t.Helper()
	ge, gn := nameEdges(got)
	we, wn := nameEdges(want)
	if !reflect.DeepEqual(gn, wn) {
		t.Fatalf("%s: host sets differ:\ngot  %v\nwant %v", what, gn, wn)
	}
	if !reflect.DeepEqual(ge, we) {
		t.Fatalf("%s: edge sets differ:\ngot  %v\nwant %v", what, ge, we)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		op   Op
	}{
		{"self edge", AddEdgeOp("a", "a")},
		{"empty src", AddHostOp("")},
		{"whitespace", AddHostOp("a b")},
		{"comment marker", AddHostOp("#a")},
		{"missing dst", Op{Kind: AddEdge, Src: "a"}},
		{"host op with dst", Op{Kind: RemoveHost, Src: "a", Dst: "b"}},
		{"unknown kind", Op{Kind: Kind(99), Src: "a"}},
	}
	for _, tc := range cases {
		b := &Batch{Ops: []Op{tc.op}}
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.op)
		}
	}
	ok := &Batch{Ops: []Op{AddHostOp("a"), RemoveHostOp("b"), AddEdgeOp("c", "d"), RemoveEdgeOp("d", "c")}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected valid batch: %v", err)
	}
}

func TestDedup(t *testing.T) {
	b := &Batch{Ops: []Op{
		AddEdgeOp("a", "b"), AddHostOp("h"), AddEdgeOp("a", "b"), AddHostOp("h"), RemoveEdgeOp("a", "b"),
	}}
	d := b.Dedup()
	want := []Op{AddEdgeOp("a", "b"), AddHostOp("h"), RemoveEdgeOp("a", "b")}
	if !reflect.DeepEqual(d.Ops, want) {
		t.Fatalf("Dedup = %v, want %v", d.Ops, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	b := &Batch{Ops: []Op{
		AddHostOp("new.example.com"),
		RemoveHostOp("dead.example.com"),
		AddEdgeOp("a.com", "b.com"),
		RemoveEdgeOp("b.com", "a.com"),
	}}
	var buf bytes.Buffer
	if err := WriteText(&buf, b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !reflect.DeepEqual(got.Ops, b.Ops) {
		t.Fatalf("round trip:\ngot  %v\nwant %v", got.Ops, b.Ops)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"nonsense 1\n+h a\n",      // bad header
		"delta 2\n+h a\n",         // unsupported version
		"delta 1\n?x a\n",         // unknown op
		"delta 1\n+h\n",           // missing name
		"delta 1\n+e a\n",         // missing dst
		"delta 1\n+e a b extra\n", // trailing field
		"delta 1\n+e a a\n",       // self edge
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText accepted %q", in)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadText(strings.NewReader("# preamble\ndelta 1\n\n# note\n+h a\n"))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got.Ops) != 1 || got.Ops[0] != AddHostOp("a") {
		t.Fatalf("ReadText = %v", got.Ops)
	}
}

func TestApplyBasic(t *testing.T) {
	h := hostGraph(t, [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "c"}}, "idle")
	b := &Batch{Ops: []Op{
		RemoveHostOp("c"),       // drops b>c, c>a, a>c
		AddHostOp("solo"),       // isolated newcomer
		AddEdgeOp("b", "fresh"), // auto-creates fresh
		AddEdgeOp("idle", "a"),
		RemoveEdgeOp("a", "b"),
	}}
	res, err := Apply(h, b)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := hostGraph(t, [][2]string{{"b", "fresh"}, {"idle", "a"}}, "a", "solo")
	sameWorld(t, res.Hosts, want, "applied graph")

	if got := res.Stats; got.HostsAdded != 2 || got.HostsRemoved != 1 || got.EdgesAdded != 2 || got.EdgesRemoved != 4 {
		t.Fatalf("Stats = %+v", got)
	}
	if got, want := res.Stats.AppliedEdges(), int64(6); got != want {
		t.Fatalf("AppliedEdges = %d, want %d", got, want)
	}
	// Monotone remap: a,b survive in order, c gone.
	a, _ := h.NodeByName("a")
	bID, _ := h.NodeByName("b")
	c, _ := h.NodeByName("c")
	if res.Remap[c] != -1 {
		t.Fatalf("removed host c remapped to %d", res.Remap[c])
	}
	if res.Remap[a] >= res.Remap[bID] {
		t.Fatalf("remap not monotone: a→%d, b→%d", res.Remap[a], res.Remap[bID])
	}
	na, _ := res.Hosts.NodeByName("a")
	if int64(na) != res.Remap[a] {
		t.Fatalf("remap[a] = %d, index says %d", res.Remap[a], na)
	}
	// New hosts occupy the tail IDs, in NewNodes.
	if len(res.NewNodes) != 2 {
		t.Fatalf("NewNodes = %v", res.NewNodes)
	}
	for _, x := range res.NewNodes {
		name := res.Hosts.Names[x]
		if name != "solo" && name != "fresh" {
			t.Fatalf("NewNodes contains %q", name)
		}
	}
	// RemapNodes drops removed entries and preserves order.
	mapped := res.RemapNodes([]graph.NodeID{a, c, bID})
	if len(mapped) != 2 || int64(mapped[0]) != res.Remap[a] || int64(mapped[1]) != res.Remap[bID] {
		t.Fatalf("RemapNodes = %v", mapped)
	}
}

func TestApplyConflicts(t *testing.T) {
	h := hostGraph(t, [][2]string{{"a", "b"}, {"b", "c"}})
	cases := []struct {
		name string
		ops  []Op
	}{
		{"add existing host", []Op{AddHostOp("a")}},
		{"remove unknown host", []Op{RemoveHostOp("ghost")}},
		{"remove and re-add host", []Op{RemoveHostOp("a"), AddHostOp("a")}},
		{"add existing edge", []Op{AddEdgeOp("a", "b")}},
		{"remove missing edge", []Op{RemoveEdgeOp("b", "a")}},
		{"remove edge with unknown host", []Op{RemoveEdgeOp("ghost", "a")}},
		{"add and remove same edge", []Op{AddEdgeOp("b", "a"), RemoveEdgeOp("b", "a")}},
		{"edge into removed host", []Op{RemoveHostOp("c"), AddEdgeOp("a", "c")}},
		{"explicit removal into removed host", []Op{RemoveHostOp("c"), RemoveEdgeOp("b", "c")}},
	}
	for _, tc := range cases {
		if _, err := Apply(h, &Batch{Ops: tc.ops}); err == nil {
			t.Errorf("%s: Apply accepted %v", tc.name, tc.ops)
		}
	}
}

func TestApplyEmptyBatchIsIdentity(t *testing.T) {
	h := hostGraph(t, [][2]string{{"a", "b"}, {"b", "c"}})
	res, err := Apply(h, &Batch{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Hosts.Graph.Equal(h.Graph) {
		t.Fatal("empty batch changed the graph")
	}
	if !reflect.DeepEqual(res.Hosts.Names, h.Names) {
		t.Fatal("empty batch changed the names")
	}
}

// randomWorld builds a random host graph for the parity tests.
func randomWorld(t *testing.T, rng *rand.Rand, n, m int) *graph.HostGraph {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%04d.test", i)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		x := graph.NodeID(rng.Intn(n))
		y := graph.NodeID(rng.Intn(n))
		if x != y {
			b.AddEdge(x, y)
		}
	}
	h, err := graph.NewHostGraph(b.Build(), names)
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	return h
}

// randomBatch builds a conflict-free batch against h: some host
// removals, some fresh hosts, some edge removals among kept hosts,
// some additions of edges that do not exist.
func randomBatch(rng *rand.Rand, h *graph.HostGraph, gen int) *Batch {
	n := h.Graph.NumNodes()
	b := &Batch{}
	removed := make(map[graph.NodeID]bool)
	for x := 0; x < n; x++ {
		if rng.Float64() < 0.05 {
			removed[graph.NodeID(x)] = true
			b.Ops = append(b.Ops, RemoveHostOp(h.Names[x]))
		}
	}
	fresh := []string{}
	for i := 0; i < 1+rng.Intn(4); i++ {
		name := fmt.Sprintf("fresh%d-%d.test", gen, i)
		fresh = append(fresh, name)
		if rng.Float64() < 0.5 {
			b.Ops = append(b.Ops, AddHostOp(name))
		} else {
			// implicit creation through an AddEdge
			dst := graph.NodeID(rng.Intn(n))
			if !removed[dst] {
				b.Ops = append(b.Ops, AddEdgeOp(name, h.Names[dst]))
			} else {
				b.Ops = append(b.Ops, AddHostOp(name))
			}
		}
	}
	touched := make(map[[2]string]bool)
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		if !removed[x] && !removed[y] && rng.Float64() < 0.1 {
			b.Ops = append(b.Ops, RemoveEdgeOp(h.Names[x], h.Names[y]))
			touched[[2]string{h.Names[x], h.Names[y]}] = true
		}
		return true
	})
	for i := 0; i < n/4; i++ {
		x := graph.NodeID(rng.Intn(n))
		y := graph.NodeID(rng.Intn(n))
		if x == y || removed[x] || removed[y] || h.Graph.HasEdge(x, y) {
			continue
		}
		key := [2]string{h.Names[x], h.Names[y]}
		if touched[key] {
			continue
		}
		touched[key] = true
		b.Ops = append(b.Ops, AddEdgeOp(h.Names[x], h.Names[y]))
	}
	// A few edges among the fresh hosts.
	if len(fresh) >= 2 {
		b.Ops = append(b.Ops, AddEdgeOp(fresh[0], fresh[1]))
	}
	return b
}

// rebuildFromScratch constructs the expected next generation the slow
// way: materialize the name-level edge set, mutate it, and rebuild
// with the Builder using exactly Apply's ID policy (survivors in old
// order, created hosts in first-appearance order).
func rebuildFromScratch(t *testing.T, h *graph.HostGraph, b *Batch) *graph.HostGraph {
	t.Helper()
	b = b.Dedup()
	removed := map[string]bool{}
	for _, op := range b.Ops {
		if op.Kind == RemoveHost {
			removed[op.Src] = true
		}
	}
	var names []string
	idx := map[string]graph.NodeID{}
	intern := func(name string) graph.NodeID {
		if x, ok := idx[name]; ok {
			return x
		}
		x := graph.NodeID(len(names))
		idx[name] = x
		names = append(names, name)
		return x
	}
	for _, name := range h.Names {
		if !removed[name] {
			intern(name)
		}
	}
	// Apply's created-host ID policy: explicit AddHost ops first (its
	// host pass), then implicit creations in edge-op order.
	for _, op := range b.Ops {
		if op.Kind == AddHost {
			intern(op.Src)
		}
	}
	for _, op := range b.Ops {
		if op.Kind == AddEdge {
			intern(op.Src)
			intern(op.Dst)
		}
	}
	edges := map[[2]string]bool{}
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		if !removed[h.Names[x]] && !removed[h.Names[y]] {
			edges[[2]string{h.Names[x], h.Names[y]}] = true
		}
		return true
	})
	for _, op := range b.Ops {
		switch op.Kind {
		case AddEdge:
			edges[[2]string{op.Src, op.Dst}] = true
		case RemoveEdge:
			delete(edges, [2]string{op.Src, op.Dst})
		}
	}
	gb := graph.NewBuilder(len(names))
	for e := range edges {
		gb.AddEdge(idx[e[0]], idx[e[1]])
	}
	out, err := graph.NewHostGraph(gb.Build(), names)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return out
}

// TestApplyParity is the tentpole guarantee: the merged graph is
// byte-identical — same CSR arrays, same names, same host index — to
// one rebuilt from scratch from the mutated edge list.
func TestApplyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomWorld(t, rng, 300, 1800)
	for gen := 0; gen < 8; gen++ {
		b := randomBatch(rng, h, gen)
		res, err := Apply(h, b)
		if err != nil {
			t.Fatalf("gen %d: Apply: %v", gen, err)
		}
		if err := res.Hosts.Graph.Validate(); err != nil {
			t.Fatalf("gen %d: merged graph invalid: %v", gen, err)
		}
		want := rebuildFromScratch(t, h, b)
		if !reflect.DeepEqual(res.Hosts.Names, want.Names) {
			t.Fatalf("gen %d: names differ", gen)
		}
		if !res.Hosts.Graph.Equal(want.Graph) {
			t.Fatalf("gen %d: CSR arrays differ from scratch rebuild", gen)
		}
		if !reflect.DeepEqual(res.Hosts.HostIndex(), want.HostIndex()) {
			t.Fatalf("gen %d: host indexes differ", gen)
		}
		h = res.Hosts
	}
}

// TestApplyInverse checks that applying Result.Inverse restores the
// original graph at the name level (IDs of restored hosts move to the
// end of the ID space, by design).
func TestApplyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomWorld(t, rng, 200, 1200)
	for gen := 0; gen < 6; gen++ {
		b := randomBatch(rng, h, gen)
		res, err := Apply(h, b)
		if err != nil {
			t.Fatalf("gen %d: Apply: %v", gen, err)
		}
		back, err := Apply(res.Hosts, res.Inverse)
		if err != nil {
			t.Fatalf("gen %d: Apply(inverse): %v", gen, err)
		}
		sameWorld(t, back.Hosts, h, fmt.Sprintf("gen %d inverse", gen))
		h = res.Hosts
	}
}

func TestDiffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	old := randomWorld(t, rng, 150, 700)
	// Build an arbitrary second generation sharing ~90% of the names.
	next := func() *graph.HostGraph {
		res, err := Apply(old, randomBatch(rng, old, 99))
		if err != nil {
			t.Fatalf("churn: %v", err)
		}
		return res.Hosts
	}()
	b, err := Diff(old, next)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	res, err := Apply(old, b)
	if err != nil {
		t.Fatalf("Apply(diff): %v", err)
	}
	sameWorld(t, res.Hosts, next, "diff round trip")

	// Identical graphs diff to the empty batch.
	same, err := Diff(old, old)
	if err != nil {
		t.Fatalf("Diff(old, old): %v", err)
	}
	if same.NumOps() != 0 {
		t.Fatalf("self-diff has %d ops: %v", same.NumOps(), same.Ops)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{HostsAdded: 1, HostsRemoved: 2, EdgesAdded: 3, EdgesRemoved: 4}
	if got, want := s.String(), "+1h -2h +3e -4e"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
