package delta

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
)

// Diff computes the batch that transforms old into new: host
// additions/removals by name, then the name-level edge difference.
// Applying the result to old yields a graph whose host set and edge
// set match new exactly (node IDs may differ; names are the stable
// identity). Diff is how churn sources — a fresh crawl, the genweb
// -churn generator — are turned into delta files.
func Diff(old, new *graph.HostGraph) (*Batch, error) {
	b := &Batch{}
	// Host difference.
	oldHas := make(map[string]graph.NodeID, len(old.Names))
	for x, name := range old.Names {
		oldHas[name] = graph.NodeID(x)
	}
	newHas := make(map[string]graph.NodeID, len(new.Names))
	for _, name := range new.Names {
		x, ok := new.NodeByName(name)
		if !ok {
			return nil, fmt.Errorf("delta: new graph index missing name %q", name)
		}
		newHas[name] = x
		if _, exists := oldHas[name]; !exists {
			b.Ops = append(b.Ops, AddHostOp(name))
		}
	}
	for _, name := range old.Names {
		if _, exists := newHas[name]; !exists {
			b.Ops = append(b.Ops, RemoveHostOp(name))
		}
	}

	// Edge difference, per surviving source host: both neighbor lists
	// are brought into the old graph's sorted ID order (new-graph
	// neighbors translate by name; neighbors only one side knows sort
	// to the appropriate end), then a two-pointer pass emits the ops.
	for x, name := range old.Names {
		nx, survives := newHas[name]
		if !survives {
			// RemoveHost drops every incident edge implicitly; explicit
			// removals referencing the host would conflict in Apply.
			continue
		}
		var oldN, newN []string
		for _, y := range old.Graph.OutNeighbors(graph.NodeID(x)) {
			oldN = append(oldN, old.Names[y])
		}
		for _, y := range new.Graph.OutNeighbors(nx) {
			newN = append(newN, new.Names[y])
		}
		emitDiff(b, name, oldN, newN, newHas)
	}
	// Edges out of hosts that exist only in the new graph.
	for _, name := range new.Names {
		if _, existed := oldHas[name]; existed {
			continue
		}
		nx := newHas[name]
		for _, y := range new.Graph.OutNeighbors(nx) {
			b.Ops = append(b.Ops, AddEdgeOp(name, new.Names[y]))
		}
	}
	return b, nil
}

// emitDiff appends the edge ops turning src's old out-neighbor name
// set into the new one. Removals into hosts the batch removes, and
// additions out of removed hosts, are implicit in the host ops and
// skipped here.
func emitDiff(b *Batch, src string, oldN, newN []string, newHas map[string]graph.NodeID) {
	sort.Strings(oldN)
	sort.Strings(newN)
	i, j := 0, 0
	for i < len(oldN) || j < len(newN) {
		switch {
		case j == len(newN) || (i < len(oldN) && oldN[i] < newN[j]):
			// Edge disappeared. If the destination host itself is gone,
			// RemoveHost already drops it.
			if _, kept := newHas[oldN[i]]; kept {
				b.Ops = append(b.Ops, RemoveEdgeOp(src, oldN[i]))
			}
			i++
		case i == len(oldN) || oldN[i] > newN[j]:
			b.Ops = append(b.Ops, AddEdgeOp(src, newN[j]))
			j++
		default: // equal: edge unchanged
			i++
			j++
		}
	}
}
