package delta

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"spammass/internal/graph"
)

// FuzzDeltaApply drives arbitrary delta text through the full
// pipeline: whatever parses must round-trip through the codec, and
// whatever applies cleanly must produce a graph satisfying the CSR
// invariants whose application is undone by the inverse batch. Run
// the seeds as normal tests, or explore with `go test -fuzz=FuzzDeltaApply`.
func FuzzDeltaApply(f *testing.F) {
	f.Add("delta 1\n+h new.test\n-h a.test\n+e b.test c.test\n-e a.test b.test\n")
	f.Add("delta 1\n# comment\n\n+e x.test y.test\n")
	f.Add("delta 1\n-h a.test\n-h b.test\n-h c.test\n")
	f.Add("delta 1\n+e n0.test n1.test\n+e n1.test n0.test\n+h lone.test\n")
	f.Add("delta 1\n+e a.test a.test\n")     // self edge: must not parse
	f.Add("delta 1\n+h a.test\n+h a.test\n") // dup add: parses, Apply rejects
	f.Add("nonsense\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<14 {
			return
		}
		b, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		// Codec round trip: write→read must reproduce the ops exactly.
		var buf bytes.Buffer
		if err := WriteText(&buf, b); err != nil {
			t.Fatalf("WriteText on parsed batch: %v", err)
		}
		b2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(b.Ops) != len(b2.Ops) || (len(b.Ops) > 0 && !reflect.DeepEqual(b.Ops, b2.Ops)) {
			t.Fatalf("codec round trip changed ops:\nin  %v\nout %v", b.Ops, b2.Ops)
		}

		// Apply against a small fixed world; conflicts are fine, a
		// malformed result is not.
		base := fuzzWorld(t)
		res, err := Apply(base, b)
		if err != nil {
			return
		}
		if err := res.Hosts.Graph.Validate(); err != nil {
			t.Fatalf("applied graph violates invariants: %v", err)
		}
		if len(res.Hosts.Names) != res.Hosts.Graph.NumNodes() {
			t.Fatalf("%d names for %d nodes", len(res.Hosts.Names), res.Hosts.Graph.NumNodes())
		}
		// Batch + inverse restores the original at the name level.
		back, err := Apply(res.Hosts, res.Inverse)
		if err != nil {
			t.Fatalf("inverse failed to apply: %v", err)
		}
		be, bn := fuzzNameEdges(back.Hosts)
		oe, on := fuzzNameEdges(base)
		if !reflect.DeepEqual(bn, on) || !reflect.DeepEqual(be, oe) {
			t.Fatalf("inverse did not restore the original:\nhosts %v vs %v\nedges %v vs %v", bn, on, be, oe)
		}
	})
}

func fuzzWorld(t *testing.T) *graph.HostGraph {
	t.Helper()
	names := []string{"a.test", "b.test", "c.test", "n0.test", "n1.test", "x.test"}
	b := graph.NewBuilder(len(names))
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {0, 3}} {
		b.AddEdge(e[0], e[1])
	}
	h, err := graph.NewHostGraph(b.Build(), names)
	if err != nil {
		t.Fatalf("fuzz world: %v", err)
	}
	return h
}

func fuzzNameEdges(h *graph.HostGraph) (edges, names []string) {
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		edges = append(edges, h.Names[x]+">"+h.Names[y])
		return true
	})
	names = append(names, h.Names...)
	sort.Strings(edges)
	sort.Strings(names)
	return edges, names
}
