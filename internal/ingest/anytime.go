package ingest

import (
	"context"
	"fmt"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
)

// DefaultExactEvery is the warm-solve cadence when
// AnytimeConfig.ExactEvery is zero: every 4th applied batch runs the
// exact estimator, the three between serve Monte-Carlo estimates.
const DefaultExactEvery = 4

// AnytimeConfig tunes the anytime estimation path.
type AnytimeConfig struct {
	// WalksPerNode is the stored-walk budget R of both incremental
	// Monte-Carlo estimators; 0 means 100. Standard-error of a score
	// shrinks as 1/√R; repair cost per batch grows linearly in R.
	WalksPerNode int
	// Seed drives the walk simulation.
	Seed int64
	// ExactEvery is the authority cadence: every ExactEvery-th applied
	// batch runs the exact warm solve (EstimateFromCoreWarm) instead of
	// publishing Monte-Carlo estimates, re-anchoring the served scores.
	// 1 makes every batch exact (the plain delta builder); 0 means
	// DefaultExactEvery.
	ExactEvery int
	// Obs receives the ingest.anytime_* metrics.
	Obs *obs.Context
}

// Anytime maintains the two incremental Monte-Carlo estimators of the
// spam-mass pair — p over the uniform jump, p' over the γ-scaled core
// jump — under graph churn, so every applied batch can publish fresh
// (bounded-staleness) scores without waiting for an exact solve. The
// exact solver remains the authority: each warm solve replaces the
// served estimates entirely, and the walks only bridge the batches in
// between.
//
// Not safe for concurrent use; the refresher serializes all applies,
// which is the only caller.
type Anytime struct {
	cfg     AnytimeConfig
	damping float64
	gamma   float64
	// base is the host graph the walk stores currently reflect; a
	// prev snapshot whose graph is not base (first use, or a full
	// refresh replaced the lineage) forces a reseed.
	base   *graph.HostGraph
	mcP    *pagerank.IncrementalMC
	mcCore *pagerank.IncrementalMC

	reseeds  *obs.Counter
	repaired *obs.Counter
	steps    *obs.Counter
}

// NewAnytime validates the configuration; the walk stores are seeded
// lazily on first use (or explicitly via Reseed).
func NewAnytime(cfg AnytimeConfig) (*Anytime, error) {
	if cfg.WalksPerNode <= 0 {
		cfg.WalksPerNode = 100
	}
	if cfg.ExactEvery <= 0 {
		cfg.ExactEvery = DefaultExactEvery
	}
	return &Anytime{
		cfg:      cfg,
		reseeds:  cfg.Obs.Counter("ingest.anytime_reseeds_total"),
		repaired: cfg.Obs.Counter("ingest.anytime_walks_repaired_total"),
		steps:    cfg.Obs.Counter("ingest.anytime_rewalk_steps_total"),
	}, nil
}

// allNodes returns 0..n-1, the support of the uniform jump.
func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// Reseed simulates both walk stores from scratch against snap's graph
// and core. Called on first use and whenever the lineage breaks (a
// full refresh replaced the graph object the walks were tracking).
func (a *Anytime) Reseed(snap *serve.Snapshot) error {
	hosts := snap.HostGraph()
	core := snap.Core()
	if len(core) == 0 {
		return fmt.Errorf("ingest: anytime estimation needs the snapshot's core")
	}
	n := hosts.Graph.NumNodes()
	a.damping = snap.Estimates().Damping
	a.gamma = snap.Config().Gamma
	mcCfg := pagerank.MonteCarloConfig{Damping: a.damping, WalksPerNode: a.cfg.WalksPerNode, Seed: a.cfg.Seed}
	var err error
	if a.mcP, err = pagerank.NewIncrementalMC(hosts.Graph, allNodes(n), 1/float64(n), mcCfg); err != nil {
		return fmt.Errorf("ingest: seeding p walks: %w", err)
	}
	mcCfg.Seed = a.cfg.Seed + 1
	if a.mcCore, err = pagerank.NewIncrementalMC(hosts.Graph, core, a.gamma/float64(len(core)), mcCfg); err != nil {
		return fmt.Errorf("ingest: seeding p' walks: %w", err)
	}
	a.base = hosts
	a.reseeds.Inc()
	return nil
}

// dirtySet lists, in new-graph IDs, every surviving host whose
// out-link set the batch changed: sources of explicit edge ops, plus
// in-neighbors of removed hosts (their edge to the removed host is
// dropped implicitly). These are exactly the nodes at which a stored
// walk's next-step distribution is stale.
func dirtySet(prev *graph.HostGraph, res *delta.Result, b *delta.Batch) []graph.NodeID {
	dirtyOld := make(map[graph.NodeID]bool)
	removedAny := false
	for _, op := range b.Ops {
		switch op.Kind {
		case delta.AddEdge, delta.RemoveEdge:
			if x, ok := prev.NodeByName(op.Src); ok {
				dirtyOld[x] = true
			}
		case delta.RemoveHost:
			removedAny = true
		}
	}
	if removedAny {
		prev.Graph.Edges(func(u, v graph.NodeID) bool {
			if res.Remap[v] < 0 {
				dirtyOld[u] = true
			}
			return true
		})
	}
	out := make([]graph.NodeID, 0, len(dirtyOld))
	for x := range dirtyOld {
		if nx := res.Remap[x]; nx >= 0 {
			out = append(out, graph.NodeID(nx))
		}
	}
	return out
}

// advance repairs both walk stores across one applied batch and
// returns the Monte-Carlo estimates on the new graph.
func (a *Anytime) advance(prev *serve.Snapshot, res *delta.Result, b *delta.Batch, core []graph.NodeID) (*mass.Estimates, error) {
	dirty := dirtySet(prev.HostGraph(), res, b)
	n2 := res.Hosts.Graph.NumNodes()
	stP, err := a.mcP.Update(res.Hosts.Graph, res.Remap, dirty, allNodes(n2), 1/float64(n2))
	if err != nil {
		return nil, fmt.Errorf("ingest: repairing p walks: %w", err)
	}
	stC, err := a.mcCore.Update(res.Hosts.Graph, res.Remap, dirty, core, a.gamma/float64(len(core)))
	if err != nil {
		return nil, fmt.Errorf("ingest: repairing p' walks: %w", err)
	}
	a.base = res.Hosts
	a.repaired.Add(int64(stP.WalksRepaired + stC.WalksRepaired))
	a.steps.Add(int64(stP.Steps + stC.Steps))
	return mass.Derive(a.mcP.Scores(), a.mcCore.Scores(), a.damping), nil
}

// HybridBuilderConfig configures NewHybridDeltaBuilder.
type HybridBuilderConfig struct {
	// Solver configures the exact warm solves at the authority cadence.
	Solver pagerank.Config
	// Anytime holds the walk state; required.
	Anytime *Anytime
	// Obs receives the delta and ingest metrics.
	Obs *obs.Context
}

// NewHybridDeltaBuilder returns a serve.DeltaApplyFunc that interleaves
// anytime Monte-Carlo estimates with exact warm solves: every applied
// batch repairs the stored walks and publishes MC-estimated scores
// immediately, and every ExactEvery-th batch runs the exact
// EstimateFromCoreWarm instead — the authority that re-anchors the
// estimates, bounding how far Monte-Carlo error can accumulate.
// Between anchors, staleness is bounded by the walk repair: every
// published epoch reflects the batch's own graph mutations; only the
// sampling noise (∝ 1/√R) and unrepaired higher-order effects persist.
//
// The refresher serializes applies, so the builder (and the Anytime
// state behind it) needs no locking.
func NewHybridDeltaBuilder(cfg HybridBuilderConfig) (serve.DeltaApplyFunc, error) {
	if cfg.Anytime == nil {
		return nil, fmt.Errorf("ingest: HybridBuilderConfig.Anytime is required")
	}
	a := cfg.Anytime
	sinceExact := 0
	return func(ctx context.Context, prev *serve.Snapshot, epoch int64, batch *delta.Batch) (*serve.Snapshot, error) {
		octx := cfg.Obs
		if ro := obs.RequestContext(ctx); ro != nil {
			octx = ro
		}
		sp := octx.Span("ingest.hybrid_build")
		defer sp.End()
		sp.SetAttr("ops", batch.NumOps())

		res, err := delta.Apply(prev.HostGraph(), batch)
		if err != nil {
			return nil, fmt.Errorf("apply delta: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prevCore := prev.Core()
		if prevCore == nil {
			return nil, fmt.Errorf("ingest: previous snapshot carries no core; hybrid path needs SnapshotConfig.Core")
		}
		core := res.RemapNodes(prevCore)
		if len(core) == 0 {
			return nil, fmt.Errorf("ingest: delta removed the entire good core (%d nodes)", len(prevCore))
		}
		scfg := prev.Config()

		// Lineage: walks must track the exact graph object prev serves.
		// First use, recovery boot, or a full refresh in between all
		// surface as a pointer mismatch and force a fresh simulation.
		if a.base != prev.HostGraph() {
			if err := a.Reseed(prev); err != nil {
				return nil, err
			}
		}

		sinceExact++
		exact := sinceExact >= a.cfg.ExactEvery
		var est *mass.Estimates
		if exact {
			warm, err := mass.RemapWarmStart(prev.Estimates(), res.Remap, res.Hosts.Graph.NumNodes(), core, scfg.Gamma)
			if err != nil {
				return nil, fmt.Errorf("remap warm start: %w", err)
			}
			solver := cfg.Solver
			if solver.Obs == nil {
				solver.Obs = octx.In(sp)
			}
			es, err := mass.NewEstimator(res.Hosts.Graph, mass.Options{Solver: solver, Gamma: scfg.Gamma})
			if err != nil {
				return nil, fmt.Errorf("estimator: %w", err)
			}
			defer es.Close()
			if est, err = es.EstimateFromCoreWarm(core, warm); err != nil {
				return nil, fmt.Errorf("warm estimate: %w", err)
			}
			// The walks still advance so they track the graph; their
			// scores are simply not published this epoch.
			if _, err := a.advance(prev, res, batch, core); err != nil {
				return nil, err
			}
			sinceExact = 0
			octx.Counter("ingest.exact_batches_total").Inc()
			sp.SetAttr("mode", "exact")
		} else {
			if est, err = a.advance(prev, res, batch, core); err != nil {
				return nil, err
			}
			octx.Counter("ingest.anytime_batches_total").Inc()
			sp.SetAttr("mode", "anytime")
		}

		octx.Counter("delta.batches_total").Inc()
		octx.Counter("delta.applied_edges_total").Add(res.Stats.AppliedEdges())
		octx.Counter("delta.hosts_added_total").Add(int64(res.Stats.HostsAdded))
		octx.Counter("delta.hosts_removed_total").Add(int64(res.Stats.HostsRemoved))
		sp.SetAttr("stats", res.Stats.String())

		scfg.Core = core
		scfg.CoreSize = len(core)
		return serve.NewSnapshot(res.Hosts, est, scfg, epoch)
	}, nil
}
