package ingest

import (
	"context"
	"math"
	"testing"

	"spammass/internal/delta"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
)

// applyHybrid drives one batch through a hybrid builder, advancing the
// epoch the way the refresher does.
func applyHybrid(t *testing.T, apply serve.DeltaApplyFunc, prev *serve.Snapshot, b *delta.Batch) *serve.Snapshot {
	t.Helper()
	next, err := apply(context.Background(), prev, prev.Epoch()+1, b)
	if err != nil {
		t.Fatalf("hybrid apply: %v", err)
	}
	return next
}

// TestHybridBuilderCadence: with ExactEvery=3, batches 3 and 6 are
// exact warm solves and the rest are Monte-Carlo estimates. The exact
// epochs must agree tightly with a pure-exact control; the anytime
// epochs must agree within sampling error — and every epoch must
// reflect the batch's own mutation (the new host exists and has a
// score).
func TestHybridBuilderCadence(t *testing.T) {
	any, err := NewAnytime(AnytimeConfig{WalksPerNode: 3000, ExactEvery: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewHybridDeltaBuilder(HybridBuilderConfig{Solver: pagerank.DefaultConfig(), Anytime: any})
	if err != nil {
		t.Fatal(err)
	}
	exact := serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})

	cur := testServeSnapshot(t, 1)
	control := cur
	for i := 1; i <= 6; i++ {
		b := growthBatch(i)
		cur = applyHybrid(t, hybrid, cur, b)
		control = applyHybrid(t, exact, control, b)
		if cur.Epoch() != control.Epoch() {
			t.Fatalf("batch %d: epoch %d, control %d", i, cur.Epoch(), control.Epoch())
		}
		// The mutation itself is always reflected, whichever estimator
		// published the scores.
		if cur.NumHosts() != control.NumHosts() {
			t.Fatalf("batch %d: %d hosts, control %d", i, cur.NumHosts(), control.NumHosts())
		}
		tol := 0.02 // exact warm solve vs exact control: solver tolerance
		if i%3 != 0 {
			tol = 0.25 // Monte-Carlo epoch: sampling noise ∝ 1/√R
		}
		var dev, norm float64
		for _, name := range control.HostGraph().Names {
			want, _ := control.Lookup(name)
			got, ok := cur.Lookup(name)
			if !ok {
				t.Fatalf("batch %d: hybrid snapshot misses %s", i, name)
			}
			dev += math.Abs(got.PageRank - want.PageRank)
			norm += want.PageRank
		}
		if dev/norm > tol {
			t.Errorf("batch %d: L1 PageRank deviation %.4f, want < %.2f", i, dev/norm, tol)
		}
		t.Logf("batch %d (%s): relative L1 PageRank deviation %.4f",
			i, map[bool]string{true: "exact", false: "anytime"}[i%3 == 0], dev/norm)
	}
}

// TestHybridBuilderReseedsOnLineageBreak: a prev snapshot whose host
// graph is not the one the walks track (recovery boot, or a full
// refresh in between) must trigger a clean reseed, not a corrupt
// estimate.
func TestHybridBuilderReseedsOnLineageBreak(t *testing.T) {
	any, err := NewAnytime(AnytimeConfig{WalksPerNode: 500, ExactEvery: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewHybridDeltaBuilder(HybridBuilderConfig{Solver: pagerank.DefaultConfig(), Anytime: any})
	if err != nil {
		t.Fatal(err)
	}
	s1 := testServeSnapshot(t, 1)
	next := applyHybrid(t, hybrid, s1, growthBatch(1))
	if any.base != next.HostGraph() {
		t.Fatal("walk store does not track the applied graph")
	}

	// A full refresh replaces the lineage: same hosts, new graph object.
	s2 := testServeSnapshot(t, next.Epoch()+1)
	after := applyHybrid(t, hybrid, s2, growthBatch(2))
	if any.base != after.HostGraph() {
		t.Fatal("walk store did not reseed onto the new lineage")
	}
	for _, name := range after.HostGraph().Names {
		if rec, ok := after.Lookup(name); !ok || math.IsNaN(rec.PageRank) || rec.PageRank < 0 {
			t.Fatalf("%s: bad score after reseed: %+v (ok=%v)", name, rec, ok)
		}
	}
}

// TestHybridBuilderHandlesRemoval: a batch that removes a host walks
// the dirty-set path for in-neighbors; the published epoch must drop
// the host and keep finite scores everywhere else.
func TestHybridBuilderHandlesRemoval(t *testing.T) {
	any, err := NewAnytime(AnytimeConfig{WalksPerNode: 500, ExactEvery: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewHybridDeltaBuilder(HybridBuilderConfig{Solver: pagerank.DefaultConfig(), Anytime: any})
	if err != nil {
		t.Fatal(err)
	}
	cur := testServeSnapshot(t, 1)
	cur = applyHybrid(t, hybrid, cur, growthBatch(1))
	cur = applyHybrid(t, hybrid, cur, &delta.Batch{Ops: []delta.Op{delta.RemoveHostOp("f.example")}})
	if _, ok := cur.Lookup("f.example"); ok {
		t.Fatal("removed host still served")
	}
	for _, name := range cur.HostGraph().Names {
		rec, ok := cur.Lookup(name)
		if !ok || math.IsNaN(rec.PageRank) || math.IsNaN(rec.AbsMass) {
			t.Fatalf("%s: bad record after removal: %+v (ok=%v)", name, rec, ok)
		}
	}
	// Removing the entire core is refused, matching the exact builder.
	if _, err := hybrid(context.Background(), cur, cur.Epoch()+1, &delta.Batch{Ops: []delta.Op{
		delta.RemoveHostOp("a.example"), delta.RemoveHostOp("b.example"),
	}}); err == nil {
		t.Fatal("hybrid builder accepted a batch that removes the whole core")
	}
}
