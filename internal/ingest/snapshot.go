package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/serve"
)

// Snapshot persistence. A snapshot file is the compactor's product:
// the served state (host graph, names, core, P and PCore vectors) plus
// the WAL position it covers, so recovery = load snapshot + replay the
// WAL suffix. Layout:
//
//	"SMSS" magic, version byte
//	uvarint epoch, uvarint appliedSeq
//	f64le damping, f64le gamma
//	uvarint |core|, then each core node as a uvarint
//	uvarint n, then n length-prefixed host names
//	the host graph in the graph.WriteBinary codec
//	n f64le P values, n f64le PCore values
//	u32le CRC32C of everything above
//
// Abs and Rel are not stored — mass.Derive rebuilds them from P and
// PCore, which keeps the file format independent of the derivation
// details. Files are written temp → Sync → Rename → dir fsync (the
// syncrename invariant), so a crash leaves either the old snapshot or
// the new one, never a torn file; the trailing CRC catches anything
// the filesystem lies about.
const (
	snapMagic   = "SMSS"
	snapVersion = 1
)

// SnapshotState is the persisted payload of one snapshot file.
type SnapshotState struct {
	Epoch      int64
	AppliedSeq uint64 // highest WAL sequence folded into this state
	Damping    float64
	Gamma      float64
	Core       []graph.NodeID
	Hosts      *graph.HostGraph
	P          []float64
	PCore      []float64
}

func snapshotName(seq uint64, epoch int64) string {
	return fmt.Sprintf("snap-%020d-%d.snap", seq, epoch)
}

func parseSnapshotName(name string) (seq uint64, epoch int64, ok bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	i := strings.IndexByte(body, '-')
	if i < 0 {
		return 0, 0, false
	}
	seq, err := strconv.ParseUint(body[:i], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	epoch, err = strconv.ParseInt(body[i+1:], 10, 64)
	if err != nil || epoch <= 0 {
		return 0, 0, false
	}
	return seq, epoch, true
}

// WriteSnapshotFile persists st into dir atomically and returns the
// final path. The temp file is fsynced before the rename and the
// directory after it, so the snapshot is durable when the call
// returns.
func WriteSnapshotFile(dir string, st *SnapshotState) (string, error) {
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, st); err != nil {
		return "", err
	}
	sum := crc32.Checksum(buf.Bytes(), crcTable)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])

	final := filepath.Join(dir, snapshotName(st.AppliedSeq, st.Epoch))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("ingest: snapshot temp: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("ingest: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("ingest: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("ingest: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("ingest: snapshot rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("ingest: snapshot dir fsync: %w", err)
	}
	return final, nil
}

func encodeSnapshot(buf *bytes.Buffer, st *SnapshotState) error {
	n := st.Hosts.Graph.NumNodes()
	if len(st.Hosts.Names) != n || len(st.P) != n || len(st.PCore) != n {
		return fmt.Errorf("ingest: snapshot state inconsistent: %d nodes, %d names, %d P, %d PCore",
			n, len(st.Hosts.Names), len(st.P), len(st.PCore))
	}
	if st.Epoch <= 0 {
		return fmt.Errorf("ingest: snapshot epoch %d out of range", st.Epoch)
	}
	buf.WriteString(snapMagic)
	buf.WriteByte(snapVersion)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	putF64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	putUvarint(uint64(st.Epoch))
	putUvarint(st.AppliedSeq)
	putF64(st.Damping)
	putF64(st.Gamma)
	putUvarint(uint64(len(st.Core)))
	for _, x := range st.Core {
		putUvarint(uint64(x))
	}
	putUvarint(uint64(n))
	for _, name := range st.Hosts.Names {
		putUvarint(uint64(len(name)))
		buf.WriteString(name)
	}
	bw := bufio.NewWriter(buf)
	if err := graph.WriteBinary(bw, st.Hosts.Graph); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, v := range st.P {
		putF64(v)
	}
	for _, v := range st.PCore {
		putF64(v)
	}
	return nil
}

// ReadSnapshotFile loads and verifies one snapshot file.
func ReadSnapshotFile(path string) (*SnapshotState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+1+4 {
		return nil, fmt.Errorf("ingest: snapshot %s: too short", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("ingest: snapshot %s: CRC mismatch", path)
	}
	r := bytes.NewReader(body)
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("ingest: snapshot %s: %w", path, err)
	}
	if string(magic[:4]) != snapMagic || magic[4] != snapVersion {
		return nil, fmt.Errorf("ingest: snapshot %s: bad magic/version %q %d", path, magic[:4], magic[4])
	}
	fail := func(field string, err error) (*SnapshotState, error) {
		return nil, fmt.Errorf("ingest: snapshot %s: %s: %w", path, field, err)
	}
	st := &SnapshotState{}
	epoch, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("epoch", err)
	}
	if epoch == 0 || epoch > math.MaxInt64 {
		return nil, fmt.Errorf("ingest: snapshot %s: epoch %d out of range", path, epoch)
	}
	st.Epoch = int64(epoch)
	if st.AppliedSeq, err = binary.ReadUvarint(r); err != nil {
		return fail("applied seq", err)
	}
	readF64 := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	if st.Damping, err = readF64(); err != nil {
		return fail("damping", err)
	}
	if st.Gamma, err = readF64(); err != nil {
		return fail("gamma", err)
	}
	ncore, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("core size", err)
	}
	if ncore > uint64(r.Len()) {
		return nil, fmt.Errorf("ingest: snapshot %s: core size %d exceeds file", path, ncore)
	}
	st.Core = make([]graph.NodeID, ncore)
	for i := range st.Core {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return fail("core node", err)
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("ingest: snapshot %s: core node %d out of range", path, v)
		}
		st.Core[i] = graph.NodeID(v)
	}
	nn, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("host count", err)
	}
	if nn > uint64(r.Len()) {
		return nil, fmt.Errorf("ingest: snapshot %s: host count %d exceeds file", path, nn)
	}
	names := make([]string, nn)
	for i := range names {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return fail("name length", err)
		}
		if l > uint64(r.Len()) {
			return nil, fmt.Errorf("ingest: snapshot %s: name length %d exceeds file", path, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return fail("name", err)
		}
		names[i] = string(b)
	}
	g, err := graph.ReadBinary(bufio.NewReader(r))
	if err != nil {
		return fail("graph", err)
	}
	// ReadBinary pulled bytes through its own buffer, so r's position is
	// no longer meaningful — but the two vectors are by construction the
	// last 16·n bytes of the body, so address them from the end.
	want := int(nn) * 16
	if len(body) < want {
		return nil, fmt.Errorf("ingest: snapshot %s: truncated vectors", path)
	}
	rest := body[len(body)-want:]
	st.P = make([]float64, nn)
	st.PCore = make([]float64, nn)
	for i := 0; i < int(nn); i++ {
		st.P[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	off := int(nn) * 8
	for i := 0; i < int(nn); i++ {
		st.PCore[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[off+i*8:]))
	}
	if g.NumNodes() != int(nn) {
		return nil, fmt.Errorf("ingest: snapshot %s: graph has %d nodes, %d names", path, g.NumNodes(), nn)
	}
	st.Hosts, err = graph.NewHostGraph(g, names)
	if err != nil {
		return fail("host graph", err)
	}
	for _, x := range st.Core {
		if int(x) >= int(nn) {
			return nil, fmt.Errorf("ingest: snapshot %s: core node %d out of graph", path, x)
		}
	}
	return st, nil
}

// LatestSnapshot returns the newest readable snapshot in dir, or nil
// when none exists. Unreadable candidates (torn by a crash before the
// rename, or bit-rotted past their CRC) are skipped with a log line,
// never fatal: the WAL can always replay from further back.
func LatestSnapshot(dir string, logf func(format string, args ...any)) (*SnapshotState, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	type cand struct {
		seq   uint64
		epoch int64
		path  string
	}
	var cands []cand
	for _, e := range entries {
		if seq, epoch, ok := parseSnapshotName(e.Name()); ok {
			cands = append(cands, cand{seq, epoch, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq > cands[j].seq
		}
		return cands[i].epoch > cands[j].epoch
	})
	for _, c := range cands {
		st, err := ReadSnapshotFile(c.path)
		if err != nil {
			if logf != nil {
				logf("ingest: skipping unreadable snapshot %s: %v", c.path, err)
			}
			continue
		}
		return st, c.path, nil
	}
	return nil, "", nil
}

// pruneSnapshots removes all but the keep newest snapshot files.
func pruneSnapshots(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type cand struct {
		seq   uint64
		epoch int64
		path  string
	}
	var cands []cand
	for _, e := range entries {
		if seq, epoch, ok := parseSnapshotName(e.Name()); ok {
			cands = append(cands, cand{seq, epoch, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq > cands[j].seq
		}
		return cands[i].epoch > cands[j].epoch
	})
	for _, c := range cands[min(keep, len(cands)):] {
		if err := os.Remove(c.path); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotStateOf captures the persistable state of a served snapshot.
func SnapshotStateOf(s *serve.Snapshot, appliedSeq uint64) *SnapshotState {
	est := s.Estimates()
	cfg := s.Config()
	return &SnapshotState{
		Epoch:      s.Epoch(),
		AppliedSeq: appliedSeq,
		Damping:    est.Damping,
		Gamma:      cfg.Gamma,
		Core:       s.Core(),
		Hosts:      s.HostGraph(),
		P:          est.P,
		PCore:      est.PCore,
	}
}

// BuildSnapshot turns a loaded SnapshotState back into a servable
// serve.Snapshot: Abs and Rel are re-derived from the persisted P and
// PCore, and the serving config (detect thresholds, MaxTop) comes from
// the caller since it is boot configuration, not logged state.
func (st *SnapshotState) BuildSnapshot(detect mass.DetectConfig, maxTop int) (*serve.Snapshot, error) {
	est := mass.Derive(st.P, st.PCore, st.Damping)
	cfg := serve.SnapshotConfig{
		Detect:   detect,
		Gamma:    st.Gamma,
		CoreSize: len(st.Core),
		Core:     st.Core,
		MaxTop:   maxTop,
	}
	return serve.NewSnapshot(st.Hosts, est, cfg, st.Epoch)
}
