package ingest

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
	"spammass/internal/testutil"
)

// benchBase builds the 10k-host snapshot the ingest benchmarks run
// against, matching the serve and delta benchmark corpus.
func benchBase(b *testing.B) *serve.Snapshot {
	b.Helper()
	const n = 10000
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%05d.example", i)
	}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		b.Fatal(err)
	}
	core := make([]graph.NodeID, n/150)
	for i := range core {
		core[i] = graph.NodeID(i * 150)
	}
	est, err := mass.EstimateFromCore(g, core, mass.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := serve.NewSnapshot(h, est, serve.SnapshotConfig{
		Detect: mass.DefaultDetectConfig(), Gamma: 0.85, CoreSize: len(core), Core: core,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// benchChurnBatch is a realistic churn unit against the 10k corpus:
// one new host cross-linked with four existing hosts.
func benchChurnBatch(i int) *delta.Batch {
	name := fmt.Sprintf("bench%06d.example", i)
	ops := []delta.Op{delta.AddHostOp(name)}
	for k := 0; k < 2; k++ {
		ops = append(ops,
			delta.AddEdgeOp(fmt.Sprintf("host%05d.example", (i*7+k*131)%10000), name),
			delta.AddEdgeOp(name, fmt.Sprintf("host%05d.example", (i*13+k*257)%10000)))
	}
	return &delta.Batch{Ops: ops}
}

// BenchmarkIngestThroughput measures durable append throughput — the
// rate at which /admin/delta can acknowledge batches — in the two
// fsync disciplines: one fsync per append, and leader-elected group
// commit amortizing the fsync over concurrent submitters.
func BenchmarkIngestThroughput(b *testing.B) {
	run := func(b *testing.B, gc time.Duration) {
		pl, err := Open(Config{Dir: b.TempDir(), GroupCommit: gc})
		if err != nil {
			b.Fatal(err)
		}
		defer pl.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := pl.Append(benchChurnBatch(i)); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "batches/s")
	}
	b.Run("fsync-each", func(b *testing.B) { run(b, 0) })
	b.Run("group-commit", func(b *testing.B) { run(b, 500*time.Microsecond) })
}

// BenchmarkRecoveryReplay measures the boot path: load the persisted
// snapshot, replay the WAL suffix through the live apply function, and
// publish. The suffix is 6 churn batches over the 10k graph — the
// worst case a CompactEvery window leaves behind at the default delta
// cadence.
func BenchmarkRecoveryReplay(b *testing.B) {
	const suffix = 6
	dir := b.TempDir()
	base := benchBase(b)
	apply := serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	ctx := context.Background()

	// Seed the directory once: snapshot at seq 0, then a WAL suffix the
	// recovery must replay.
	if _, err := WriteSnapshotFile(dir, SnapshotStateOf(base, 0)); err != nil {
		b.Fatal(err)
	}
	seed, err := Open(Config{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= suffix; i++ {
		if _, err := seed.Append(benchChurnBatch(i)); err != nil {
			b.Fatal(err)
		}
	}
	seed.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := Open(Config{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		snap, seq, err := pl.Latest(base.Config().Detect, 0)
		if err != nil || snap == nil {
			b.Fatalf("Latest: (%v, %v)", snap, err)
		}
		recovered, applied, err := pl.Recover(ctx, snap, seq, apply)
		if err != nil {
			b.Fatal(err)
		}
		if applied != suffix || recovered.NumHosts() != base.NumHosts()+suffix {
			b.Fatalf("recovered %d batches to %d hosts", applied, recovered.NumHosts())
		}
		pl.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*suffix)/b.Elapsed().Seconds(), "batches/s")
}
