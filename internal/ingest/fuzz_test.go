package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spammass/internal/delta"
)

// walFileWithBatches builds a valid single-segment WAL containing the
// given batches, returning the raw segment bytes.
func walFileWithBatches(t testing.TB, batches []*delta.Batch) []byte {
	t.Helper()
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i, b := range batches {
		if _, err := w.Append(b); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	w.Close()
	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the WAL scanner as the final
// (active) segment. Whatever the bytes are, opening must either fail
// cleanly or yield a log whose replay terminates without panic, whose
// records all carry contiguous sequences from 1, and which accepts a
// new append afterward. If the input is a valid log prefix, the whole
// records in it must survive byte-for-byte. Run the seeds as normal
// tests, or explore with `go test -fuzz=FuzzWALReplay ./internal/ingest/`.
func FuzzWALReplay(f *testing.F) {
	// Seeds: empty, header-only, one and two real records, a torn tail,
	// a flipped payload byte, and pure noise.
	seedBatches := []*delta.Batch{
		{Ops: []delta.Op{delta.AddHostOp("s1.example")}},
		{Ops: []delta.Op{delta.AddEdgeOp("s1.example", "s2.example")}},
	}
	whole := walFileWithBatches(f, seedBatches)
	f.Add([]byte{})
	f.Add(whole[:segHdrLen])
	f.Add(whole)
	f.Add(whole[:len(whole)-3]) // torn tail
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-2] ^= 0xFF
	f.Add(corrupt)
	f.Add([]byte("SMWL\x01\x00\x00\x00garbage that is not a record"))
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			// A rejected log must be rejected as corruption, not by a
			// stray panic or an unclassified failure.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenWAL failed without ErrCorrupt: %v", err)
			}
			return
		}
		defer w.Close()

		var seqs []uint64
		var got []*delta.Batch
		if err := w.Replay(1, func(seq uint64, b *delta.Batch) error {
			seqs = append(seqs, seq)
			got = append(got, b)
			return nil
		}); err != nil {
			t.Fatalf("Replay after successful open: %v", err)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("replayed sequences not contiguous from 1: %v", seqs)
			}
		}
		if uint64(len(seqs)) != w.LastSeq() {
			t.Fatalf("replayed %d records but LastSeq is %d", len(seqs), w.LastSeq())
		}

		// A byte-identical copy of the reference log must restore every
		// batch exactly; any prefix of it keeps a prefix of them.
		if bytes.HasPrefix(whole, data) {
			for i, b := range got {
				if !reflect.DeepEqual(b, seedBatches[i]) {
					t.Fatalf("record %d did not round-trip: %v vs %v", i, b, seedBatches[i])
				}
			}
			if bytes.Equal(data, whole) && len(got) != len(seedBatches) {
				t.Fatalf("intact log replayed %d of %d batches", len(got), len(seedBatches))
			}
		}

		// The truncated log must accept the next append and replay it.
		next := &delta.Batch{Ops: []delta.Op{delta.AddHostOp("after.example")}}
		seq, err := w.Append(next)
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if seq != uint64(len(seqs))+1 {
			t.Fatalf("append got seq %d after %d survivors", seq, len(seqs))
		}
		found := false
		if err := w.Replay(seq, func(s uint64, b *delta.Batch) error {
			if s == seq {
				found = reflect.DeepEqual(b, next)
			}
			return nil
		}); err != nil {
			t.Fatalf("replaying appended record: %v", err)
		}
		if !found {
			t.Fatalf("appended record (seq %d) not replayed", seq)
		}
	})
}
