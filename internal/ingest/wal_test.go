package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"spammass/internal/delta"
)

// testBatch builds a recognizable batch keyed by i.
func testBatch(i int) *delta.Batch {
	return &delta.Batch{Ops: []delta.Op{
		delta.AddHostOp(fmt.Sprintf("new%d.example", i)),
		delta.AddEdgeOp(fmt.Sprintf("new%d.example", i), "hub.example"),
	}}
}

// appendN appends batches 1..n and fails the test on any error.
func appendN(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		seq, err := w.Append(testBatch(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
}

// replayAll collects every (seq, batch) pair from seq `from`.
func replayAll(t *testing.T, w *WAL, from uint64) map[uint64]*delta.Batch {
	t.Helper()
	out := map[uint64]*delta.Batch{}
	if err := w.Replay(from, func(seq uint64, b *delta.Batch) error {
		out[seq] = b
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendN(t, w, 5)
	if got := w.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 5 {
		t.Fatalf("reopened LastSeq = %d, want 5", got)
	}
	got := replayAll(t, w2, 1)
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	for i := 1; i <= 5; i++ {
		if !reflect.DeepEqual(got[uint64(i)], testBatch(i)) {
			t.Errorf("seq %d round-tripped to %v", i, got[uint64(i)])
		}
	}
	// Replay from the middle skips the prefix.
	if mid := replayAll(t, w2, 4); len(mid) != 2 {
		t.Errorf("Replay(4) returned %d records, want 2", len(mid))
	}
	// Appends continue the sequence after reopen.
	seq, err := w2.Append(testBatch(6))
	if err != nil || seq != 6 {
		t.Fatalf("post-reopen Append = (%d, %v), want (6, nil)", seq, err)
	}
}

// TestWALTornTailEveryOffset is the byte-granularity crash property:
// for every possible prefix length of the log file, reopening must
// succeed, keep exactly the records whose bytes are whole, and accept
// new appends. This is kill -9 at every byte offset.
func TestWALTornTailEveryOffset(t *testing.T) {
	ref := t.TempDir()
	w, err := OpenWAL(ref, WALConfig{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendN(t, w, 3)
	w.Close()
	segPath := filepath.Join(ref, segmentName(1))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wc, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		survived := replayAll(t, wc, 1)
		last := wc.LastSeq()
		if uint64(len(survived)) != last {
			t.Fatalf("cut %d: %d records replayed but LastSeq %d", cut, len(survived), last)
		}
		for i := uint64(1); i <= last; i++ {
			if !reflect.DeepEqual(survived[i], testBatch(int(i))) {
				t.Fatalf("cut %d: seq %d corrupted after truncation", cut, i)
			}
		}
		// The log must accept the next append cleanly.
		if seq, err := wc.Append(testBatch(int(last) + 1)); err != nil || seq != last+1 {
			t.Fatalf("cut %d: append after truncation = (%d, %v)", cut, seq, err)
		}
		wc.Close()
	}
}

func TestWALCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation per append.
	w, err := OpenWAL(dir, WALConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendN(t, w, 3)
	if w.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segments", w.Segments())
	}
	w.Close()

	// Flip one payload byte in the FIRST (sealed) segment.
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	w2, err := OpenWAL(dir, WALConfig{SegmentBytes: 1})
	if err == nil {
		w2.Close()
		t.Fatal("OpenWAL accepted a corrupt sealed segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

func TestWALRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	appendN(t, w, 6)
	segs := w.Segments()
	if segs < 3 {
		t.Fatalf("expected >=3 segments, have %d", segs)
	}
	removed, err := w.TruncateThrough(4)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed == 0 {
		t.Fatal("TruncateThrough removed nothing")
	}
	// Everything after the truncation point must still replay.
	got := replayAll(t, w, 5)
	for i := uint64(5); i <= 6; i++ {
		if !reflect.DeepEqual(got[i], testBatch(int(i))) {
			t.Errorf("seq %d missing after TruncateThrough", i)
		}
	}
	// The active segment survives even a full-coverage truncation.
	if _, err := w.TruncateThrough(100); err != nil {
		t.Fatalf("TruncateThrough(100): %v", err)
	}
	if w.Segments() < 1 {
		t.Fatal("active segment was deleted")
	}
}

func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALConfig{GroupCommit: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = w.Append(testBatch(i + 1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Append %d: %v", i, err)
		}
	}
	w.Close()

	w2, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if got := len(replayAll(t, w2, 1)); got != n {
		t.Fatalf("replayed %d records, want %d", got, n)
	}
}
