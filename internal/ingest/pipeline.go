package ingest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spammass/internal/delta"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/serve"
)

// DefaultKeepSnapshots is how many snapshot files survive pruning when
// Config.KeepSnapshots is zero: the newest plus one fallback, in case
// the newest is lost to bit rot.
const DefaultKeepSnapshots = 2

// Config tunes a Pipeline.
type Config struct {
	// Dir holds the WAL segments and snapshot files.
	Dir string
	// SegmentBytes and GroupCommit pass through to the WAL.
	SegmentBytes int64
	GroupCommit  time.Duration
	// CompactEvery is the RunCompactor period; 0 disables periodic
	// compaction (Compact can still be called directly).
	CompactEvery time.Duration
	// KeepSnapshots is how many snapshot files to retain; 0 means
	// DefaultKeepSnapshots.
	KeepSnapshots int
	// Obs receives the ingest metrics and spans.
	Obs *obs.Context
}

// Pipeline ties the WAL and snapshot store into the serving tier's
// durability loop. It implements serve.Journal: SubmitDelta appends
// here before acknowledging, the refresher reports each served
// snapshot back, and the compactor folds the applied log prefix into a
// snapshot file so the WAL stays bounded and recovery stays fast.
type Pipeline struct {
	wal *WAL
	cfg Config

	// mu guards the checkpoint — the latest served snapshot paired with
	// the highest WAL sequence it covers. Pairing them under one lock is
	// what lets the compactor persist a consistent (state, position)
	// cut without stalling the apply loop.
	mu   sync.Mutex
	snap *serve.Snapshot
	seq  uint64

	// lastSnapSeq/lastSnapEpoch identify the newest persisted snapshot,
	// so an unchanged checkpoint skips the compaction entirely.
	lastSnapSeq   uint64
	lastSnapEpoch int64

	compactions *obs.Counter
	recovered   *obs.Counter
	skipped     *obs.Counter
}

// Open opens (or initializes) the durability directory: the WAL is
// scanned and its torn tail truncated, ready for appends and replay.
func Open(cfg Config) (*Pipeline, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: Config.Dir is required")
	}
	if cfg.KeepSnapshots <= 0 {
		cfg.KeepSnapshots = DefaultKeepSnapshots
	}
	wal, err := OpenWAL(cfg.Dir, WALConfig{
		SegmentBytes: cfg.SegmentBytes,
		GroupCommit:  cfg.GroupCommit,
		Obs:          cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		wal:         wal,
		cfg:         cfg,
		compactions: cfg.Obs.Counter("ingest.compactions_total"),
		recovered:   cfg.Obs.Counter("ingest.recovered_batches_total"),
		skipped:     cfg.Obs.Counter("ingest.recovery_skipped_total"),
	}, nil
}

// WAL exposes the underlying log (for tests and benchmarks).
func (p *Pipeline) WAL() *WAL { return p.wal }

// Append implements serve.Journal: stage one batch in the log and
// assign its sequence number. Durability is deferred to WaitDurable so
// the submitter can release its ordering lock before the group-commit
// window, letting concurrent submitters share one fsync.
func (p *Pipeline) Append(b *delta.Batch) (uint64, error) {
	return p.wal.AppendBuffered(b)
}

// WaitDurable implements serve.Journal: block until every record with
// sequence ≤ seq is fsynced.
func (p *Pipeline) WaitDurable(seq uint64) error {
	return p.wal.WaitDurable(seq)
}

// MarkApplied implements serve.Journal: the served snapshot now covers
// every sequence up to and including seq. Out-of-order marks (a late
// failure report racing a newer success) never regress the
// checkpoint.
func (p *Pipeline) MarkApplied(seq uint64, snap *serve.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if seq < p.seq {
		return
	}
	p.seq = seq
	p.snap = snap
}

// MarkRefreshed implements serve.Journal: a full rebuild superseded
// the served state without consuming queued sequences.
func (p *Pipeline) MarkRefreshed(snap *serve.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snap = snap
}

// checkpoint returns the current (snapshot, seq) cut.
func (p *Pipeline) checkpoint() (*serve.Snapshot, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap, p.seq
}

// Latest loads the newest readable persisted snapshot, rebuilding the
// servable form with the given boot configuration. Returns (nil, 0,
// nil) when no snapshot exists yet — the caller then runs its initial
// build and recovery replays the whole log.
func (p *Pipeline) Latest(detect mass.DetectConfig, maxTop int) (*serve.Snapshot, uint64, error) {
	st, path, err := LatestSnapshot(p.cfg.Dir, p.cfg.Obs.Logf)
	if err != nil || st == nil {
		return nil, 0, err
	}
	snap, err := st.BuildSnapshot(detect, maxTop)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: rebuilding snapshot %s: %w", path, err)
	}
	p.cfg.Obs.Logf("ingest: loaded snapshot %s (epoch %d, seq %d, %d hosts)", path, snap.Epoch(), st.AppliedSeq, snap.NumHosts())
	return snap, st.AppliedSeq, nil
}

// Recover replays the WAL suffix beyond baseSeq onto base through the
// same apply function the live server uses, one batch per epoch. A
// batch whose apply fails is logged and skipped — exactly what the
// live Run loop does with a failed apply — so the recovered state
// equals the state a never-crashed server would serve. Returns the
// recovered snapshot (base itself when the suffix is empty) and the
// number of batches applied.
func (p *Pipeline) Recover(ctx context.Context, base *serve.Snapshot, baseSeq uint64, apply serve.DeltaApplyFunc) (*serve.Snapshot, int, error) {
	if base == nil {
		return nil, 0, fmt.Errorf("ingest: recovery needs a base snapshot")
	}
	sp := p.cfg.Obs.Span("ingest.recover")
	defer sp.End()
	start := time.Now()
	cur := base
	applied := 0
	lastSeq := baseSeq
	err := p.wal.Replay(baseSeq+1, func(seq uint64, b *delta.Batch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		next, err := apply(ctx, cur, cur.Epoch()+1, b)
		if err != nil {
			p.skipped.Inc()
			p.cfg.Obs.Logf("ingest: recovery skipping batch seq %d (%d ops): %v", seq, b.NumOps(), err)
			lastSeq = seq
			return nil
		}
		cur = next
		applied++
		lastSeq = seq
		return nil
	})
	if err != nil {
		return nil, applied, fmt.Errorf("ingest: WAL replay: %w", err)
	}
	p.recovered.Add(int64(applied))
	p.mu.Lock()
	p.snap = cur
	p.seq = lastSeq
	p.mu.Unlock()
	sp.SetAttr("applied", applied)
	sp.SetAttr("epoch", cur.Epoch())
	p.cfg.Obs.Histogram("ingest.recovery_seconds").Observe(time.Since(start).Seconds())
	p.cfg.Obs.Logf("ingest: recovered to epoch %d (replayed %d batches through seq %d, %s)",
		cur.Epoch(), applied, lastSeq, time.Since(start).Round(time.Millisecond))
	return cur, applied, nil
}

// Compact persists the current checkpoint as a snapshot file, deletes
// the WAL segments it covers, and prunes old snapshots. A checkpoint
// identical to the last persisted one is a no-op. Safe to call
// concurrently with appends and applies: the checkpoint is an
// immutable (snapshot, seq) pair, and segment deletion never touches
// the active segment.
func (p *Pipeline) Compact() error {
	snap, seq := p.checkpoint()
	if snap == nil {
		return nil
	}
	p.mu.Lock()
	unchanged := seq == p.lastSnapSeq && snap.Epoch() == p.lastSnapEpoch
	p.mu.Unlock()
	if unchanged {
		return nil
	}
	sp := p.cfg.Obs.Span("ingest.compact")
	defer sp.End()
	start := time.Now()
	path, err := WriteSnapshotFile(p.cfg.Dir, SnapshotStateOf(snap, seq))
	if err != nil {
		return err
	}
	removed, err := p.wal.TruncateThrough(seq)
	if err != nil {
		return err
	}
	if err := pruneSnapshots(p.cfg.Dir, p.cfg.KeepSnapshots); err != nil {
		return err
	}
	p.mu.Lock()
	p.lastSnapSeq = seq
	p.lastSnapEpoch = snap.Epoch()
	p.mu.Unlock()
	p.compactions.Inc()
	sp.SetAttr("seq", seq)
	sp.SetAttr("epoch", snap.Epoch())
	sp.SetAttr("segments_removed", removed)
	p.cfg.Obs.Histogram("ingest.compact_seconds").Observe(time.Since(start).Seconds())
	p.cfg.Obs.Logf("ingest: compacted to %s (epoch %d, seq %d, %d segments removed)", path, snap.Epoch(), seq, removed)
	return nil
}

// RunCompactor compacts on a CompactEvery ticker until ctx is
// canceled, then takes one final compaction so a clean shutdown leaves
// the shortest possible replay. Compaction failures are logged and
// retried next tick — the WAL keeps everything in the meantime.
func (p *Pipeline) RunCompactor(ctx context.Context) {
	if p.cfg.CompactEvery <= 0 {
		return
	}
	t := time.NewTicker(p.cfg.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if err := p.Compact(); err != nil {
				p.cfg.Obs.Logf("ingest: final compaction failed: %v", err)
			}
			return
		case <-t.C:
			if err := p.Compact(); err != nil {
				p.cfg.Obs.Logf("ingest: compaction failed: %v", err)
			}
		}
	}
}

// Close closes the WAL. Call after the refresher and compactor have
// stopped.
func (p *Pipeline) Close() error { return p.wal.Close() }
