package ingest

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"spammass/internal/delta"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
)

// growthBatch is a batch that applies cleanly to any snapshot built on
// testServeSnapshot's graph: it introduces host g<i>.example and wires
// it between two seed hosts.
func growthBatch(i int) *delta.Batch {
	name := fmt.Sprintf("g%d.example", i)
	return &delta.Batch{Ops: []delta.Op{
		delta.AddHostOp(name),
		delta.AddEdgeOp("a.example", name),
		delta.AddEdgeOp(name, "b.example"),
	}}
}

// poisonBatch fails delta.Apply (the host already exists), exercising
// the log-and-skip path both live and during recovery.
func poisonBatch() *delta.Batch {
	return &delta.Batch{Ops: []delta.Op{delta.AddHostOp("a.example")}}
}

// TestPipelineCrashRecoveryEquality is the subsystem's core property:
// a server that journals every batch, compacts mid-sequence, and is
// then killed must recover to exactly the state a never-crashed server
// serves — same epoch, same per-host scores and labels.
func TestPipelineCrashRecoveryEquality(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	apply := serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	base := testServeSnapshot(t, 1)
	detect := base.Config().Detect

	pl, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Live run: journal each batch, apply it, report the new snapshot.
	// Batch 4 is a poison batch: journaled (the WAL is content-agnostic)
	// but skipped by the apply loop, exactly like the live refresher.
	batches := []*delta.Batch{
		growthBatch(1), growthBatch(2), growthBatch(3),
		poisonBatch(),
		growthBatch(4), growthBatch(5),
	}
	control := base
	for i, b := range batches {
		seq, err := pl.Append(b)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		next, err := apply(ctx, control, control.Epoch()+1, b)
		if err != nil {
			if i != 3 {
				t.Fatalf("apply %d: %v", i, err)
			}
			pl.MarkApplied(seq, control) // skipped batch still advances the journal position
		} else {
			control = next
			pl.MarkApplied(seq, control)
		}
		if i == 2 {
			// Mid-sequence compaction: the snapshot covers seqs 1..3.
			if err := pl.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}

	// Crash: abandon the pipeline without Close. Every Append already
	// fsynced, so the files are what a kill -9 would leave behind.
	pl2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer pl2.Close()
	rbase, baseSeq, err := pl2.Latest(detect, 0)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if rbase == nil || baseSeq != 3 {
		t.Fatalf("Latest = (%v, %d), want compacted snapshot at seq 3", rbase, baseSeq)
	}
	recovered, applied, err := pl2.Recover(ctx, rbase, baseSeq, apply)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if applied != 2 {
		t.Fatalf("recovery applied %d batches, want 2 (seqs 5 and 6; 4 is poison)", applied)
	}

	if recovered.Epoch() != control.Epoch() {
		t.Fatalf("recovered epoch %d, control %d", recovered.Epoch(), control.Epoch())
	}
	if recovered.NumHosts() != control.NumHosts() {
		t.Fatalf("recovered %d hosts, control %d", recovered.NumHosts(), control.NumHosts())
	}
	for _, name := range control.HostGraph().Names {
		want, _ := control.Lookup(name)
		got, ok := recovered.Lookup(name)
		if !ok {
			t.Fatalf("recovered snapshot misses %s", name)
		}
		if math.Abs(got.AbsMass-want.AbsMass) > 1e-9 || math.Abs(got.RelMass-want.RelMass) > 1e-9 ||
			math.Abs(got.PageRank-want.PageRank) > 1e-9 || got.Label != want.Label {
			t.Errorf("%s: recovered %+v, control %+v", name, got, want)
		}
	}

	// Recovery re-established the checkpoint, so a compaction now
	// persists the recovered state and drops the replayed suffix.
	if err := pl2.Compact(); err != nil {
		t.Fatalf("post-recovery Compact: %v", err)
	}
	st, _, err := LatestSnapshot(dir, nil)
	if err != nil || st == nil || st.AppliedSeq != 6 {
		t.Fatalf("post-recovery snapshot seq = %v (err %v), want 6", st, err)
	}
}

// TestPipelineFreshDir: no snapshot, empty WAL — the boot path falls
// back to an initial build, and recovery is a no-op that still sets the
// checkpoint.
func TestPipelineFreshDir(t *testing.T) {
	pl, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer pl.Close()
	base := testServeSnapshot(t, 1)
	snap, seq, err := pl.Latest(base.Config().Detect, 0)
	if err != nil || snap != nil || seq != 0 {
		t.Fatalf("Latest on fresh dir = (%v, %d, %v), want (nil, 0, nil)", snap, seq, err)
	}
	apply := serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	recovered, applied, err := pl.Recover(context.Background(), base, 0, apply)
	if err != nil || applied != 0 || recovered != base {
		t.Fatalf("Recover on empty WAL = (%v, %d, %v), want (base, 0, nil)", recovered, applied, err)
	}
	// Compact before any MarkApplied has nothing to persist.
	if err := pl.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
}

// TestPipelineCompactSkipsUnchanged: compacting twice at the same
// checkpoint writes one snapshot file, not two.
func TestPipelineCompactSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	pl, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer pl.Close()
	snap := testServeSnapshot(t, 2)
	seq, err := pl.Append(growthBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	pl.MarkApplied(seq, snap)
	for i := 0; i < 3; i++ {
		if err := pl.Compact(); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if _, _, ok := parseSnapshotName(e.Name()); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files after repeated compaction of one checkpoint, want 1", snaps)
	}
}

// TestPipelineRaceHammer drives concurrent appends, checkpoint marks,
// compactions, and replays through one pipeline. Run under -race (make
// race / CI) this is the data-race proof for the appender/compactor/
// replayer triangle; without -race it is still a liveness check.
func TestPipelineRaceHammer(t *testing.T) {
	pl, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap := testServeSnapshot(t, 3)

	const writers = 4
	const perWriter = 40
	var writersWG, loopsWG sync.WaitGroup
	stop := make(chan struct{})

	for wi := 0; wi < writers; wi++ {
		writersWG.Add(1)
		go func(wi int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := pl.Append(growthBatch(wi*perWriter + i))
				if err != nil {
					t.Errorf("writer %d: Append: %v", wi, err)
					return
				}
				pl.MarkApplied(seq, snap)
			}
		}(wi)
	}
	loopsWG.Add(1)
	go func() {
		defer loopsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := pl.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	loopsWG.Add(1)
	go func() {
		defer loopsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := pl.WAL().Replay(1, func(seq uint64, b *delta.Batch) error { return nil })
			// A segment compacted away mid-replay surfaces as a missing
			// file; that interleaving is expected here. Anything else is
			// a real failure.
			if err != nil && !os.IsNotExist(err) {
				t.Errorf("Replay: %v", err)
				return
			}
		}
	}()

	writersWG.Wait()
	close(stop)
	loopsWG.Wait()
	if got := pl.WAL().LastSeq(); got != writers*perWriter {
		t.Fatalf("LastSeq = %d, want %d", got, writers*perWriter)
	}
	if err := pl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
