// Package ingest is the durability and liveness layer of the serving
// tier: it makes the incremental refresh path (internal/delta, PR 5)
// survive process death. Mutation batches are appended to a segmented
// write-ahead log and fsynced *before* the server acknowledges them; a
// compactor periodically folds the applied log prefix into a persisted
// host-graph + estimates snapshot (the atomic temp-write → Sync →
// Rename discipline the syncrename analyzer enforces); and boot-time
// recovery loads the last snapshot and replays the WAL suffix through
// the same one-pass merge the live server uses, so a kill -9 at any
// byte offset loses nothing that was acknowledged.
//
// The package also hosts the *anytime* estimation path: an incremental
// Monte-Carlo walk store (pagerank.IncrementalMC) maintained under
// edge churn, serving bounded-staleness spam-mass scores between the
// exact warm solves that remain the authority (Engström & Silvestrov's
// evolving-link-structure regime).
package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spammass/internal/delta"
	"spammass/internal/obs"
)

// WAL framing. A segment file is an 8-byte header ("SMWL", a version
// byte, three reserved zero bytes) followed by length-prefixed
// records:
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// where the payload is the record's sequence number as a uvarint
// followed by the batch in the delta text codec. Sequence numbers are
// assigned contiguously from 1 and checked on replay, so a record
// that decodes under a valid CRC but carries the wrong sequence is
// still rejected — arbitrary bytes cannot smuggle in a batch.
const (
	segMagic   = "SMWL"
	segVersion = 1
	segHdrLen  = 8
	recHdrLen  = 8
	// maxRecordBytes bounds one framed payload; a length prefix beyond
	// it is treated as corruption, not as an allocation request.
	maxRecordBytes = 64 << 20
)

// DefaultSegmentBytes is the segment rotation threshold when
// WALConfig.SegmentBytes is zero.
const DefaultSegmentBytes = 64 << 20

// crcTable is the Castagnoli polynomial, the CRC with hardware support
// on every platform this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports invalid bytes in a sealed (non-final) WAL
// segment: data the log once acknowledged is unreadable, which
// recovery must surface rather than silently skip. A torn tail in the
// final segment is NOT corruption — it is the expected shape of a
// crash mid-append, and Open truncates it away.
var ErrCorrupt = fmt.Errorf("ingest: WAL segment corrupt")

// WALConfig tunes the write-ahead log.
type WALConfig struct {
	// SegmentBytes is the rotation threshold: a segment that reaches it
	// is sealed and a new one started. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// GroupCommit batches fsyncs: an append waits up to this long for
	// neighbors so one fsync covers the group. 0 syncs every append
	// before it returns. Either way no Append returns before its record
	// is durable — the knob trades ack latency for fsync amortization,
	// never durability.
	GroupCommit time.Duration
	// Obs receives the ingest.wal_* metrics.
	Obs *obs.Context
}

// WAL is a segmented write-ahead log of delta batches. Appends are
// serialized and fsynced before they return; Replay streams the
// surviving records back in order. It is safe for concurrent use:
// appends, replays, and segment truncation may interleave (a replay
// concurrent with appends sees a prefix of the log).
type WAL struct {
	dir string
	cfg WALConfig

	mu       sync.Mutex
	seg      *os.File // active segment, positioned at its end
	segSize  int64
	segments []segmentInfo // ascending by first sequence; last is active
	nextSeq  uint64        // sequence the next append receives
	written  uint64        // highest sequence written to the OS
	failed   error         // a torn in-process write poisons the log

	// Group-commit state: synced is the highest durable sequence,
	// advanced by whichever appender is elected leader for a window.
	smu     sync.Mutex
	scond   *sync.Cond
	synced  uint64
	syncing bool
	syncErr error

	appends    *obs.Counter
	appendedBy *obs.Counter
	fsyncs     *obs.Counter
	truncated  *obs.Counter
	segGauge   *obs.Gauge
	sizeGauge  *obs.Gauge
}

type segmentInfo struct {
	first uint64 // sequence of the segment's first record
	path  string
}

func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%020d.log", first)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// OpenWAL opens (or creates) the log in dir, scanning every segment:
// sealed segments must be fully valid (ErrCorrupt otherwise), and the
// final segment is truncated at the first invalid byte — the torn tail
// of a crash mid-append. The next append continues the sequence after
// the last surviving record.
func OpenWAL(dir string, cfg WALConfig) (*WAL, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: wal dir: %w", err)
	}
	w := &WAL{
		dir:        dir,
		cfg:        cfg,
		appends:    cfg.Obs.Counter("ingest.wal_appends_total"),
		appendedBy: cfg.Obs.Counter("ingest.wal_append_bytes_total"),
		fsyncs:     cfg.Obs.Counter("ingest.wal_fsyncs_total"),
		truncated:  cfg.Obs.Counter("ingest.wal_truncated_records_total"),
		segGauge:   cfg.Obs.Gauge("ingest.wal_segments"),
		sizeGauge:  cfg.Obs.Gauge("ingest.wal_size_bytes"),
	}
	w.scond = sync.NewCond(&w.smu)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: wal dir: %w", err)
	}
	for _, e := range entries {
		if first, ok := parseSegmentName(e.Name()); ok {
			w.segments = append(w.segments, segmentInfo{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].first < w.segments[j].first })

	w.nextSeq = 1
	if len(w.segments) > 0 {
		w.nextSeq = w.segments[0].first
	}
	for i, seg := range w.segments {
		if seg.first != w.nextSeq {
			return nil, fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorrupt, seg.path, seg.first, w.nextSeq)
		}
		last := i == len(w.segments)-1
		validLen, n, err := scanSegment(seg.path, seg.first, nil)
		// Only a framing violation in the final segment is a torn tail to
		// truncate; corruption in a sealed segment or a real I/O error
		// anywhere must surface instead.
		if err != nil && (!last || !isFrameError(err)) {
			return nil, err
		}
		w.nextSeq = seg.first + uint64(n)
		if last {
			fi, statErr := os.Stat(seg.path)
			if statErr != nil {
				return nil, statErr
			}
			if fi.Size() > validLen {
				// Torn tail: everything past the last whole record was
				// never acknowledged. Cut it off so the next append
				// starts on a clean frame.
				w.truncated.Inc()
				cfg.Obs.Logf("ingest: truncating torn WAL tail %s: %d -> %d bytes", seg.path, fi.Size(), validLen)
				if err := os.Truncate(seg.path, validLen); err != nil {
					return nil, fmt.Errorf("ingest: truncating torn tail: %w", err)
				}
			}
			w.segSize = validLen
		}
	}
	w.written = w.nextSeq - 1
	w.synced = w.written

	if len(w.segments) == 0 {
		if err := w.newSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		active := w.segments[len(w.segments)-1]
		f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if w.segSize < segHdrLen {
			// The header itself was torn; rewrite it in place.
			if err := writeSegmentHeader(f); err != nil {
				f.Close()
				return nil, err
			}
			w.segSize = segHdrLen
		}
		if _, err := f.Seek(w.segSize, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		w.seg = f
	}
	w.updateGauges()
	return w, nil
}

func writeSegmentHeader(f *os.File) error {
	hdr := [segHdrLen]byte{}
	copy(hdr[:], segMagic)
	hdr[4] = segVersion
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("ingest: segment header: %w", err)
	}
	return nil
}

// newSegmentLocked seals the active segment (if any) and starts the
// next one, named by the sequence its first record will carry. The
// directory entry is fsynced so the new segment survives a crash
// immediately after rotation. Caller holds w.mu.
func (w *WAL) newSegmentLocked() error {
	if w.seg != nil {
		if err := w.seg.Sync(); err != nil {
			return err
		}
		if err := w.seg.Close(); err != nil {
			return err
		}
		w.seg = nil
	}
	path := filepath.Join(w.dir, segmentName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: new segment: %w", err)
	}
	if err := writeSegmentHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(segHdrLen, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.seg = f
	w.segSize = segHdrLen
	w.segments = append(w.segments, segmentInfo{first: w.nextSeq, path: path})
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a failure there
	// must not be confused with a failed data write.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Append frames b, writes it to the active segment, and returns once
// the record is durable (fsynced). The returned sequence number is the
// record's identity in the log, contiguous from 1. After a failed
// write the WAL is poisoned — the in-file tail is untrustworthy until
// the next Open truncates it — and every later Append fails fast.
func (w *WAL) Append(b *delta.Batch) (uint64, error) {
	seq, err := w.AppendBuffered(b)
	if err != nil {
		return 0, err
	}
	if err := w.WaitDurable(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendBuffered frames b and writes it to the active segment WITHOUT
// waiting for durability: the record has its sequence number and is
// visible to Replay, but is not crash-safe until a WaitDurable call
// covering it returns. Splitting the write from the wait lets a
// submitter that serializes appends under its own lock release that
// lock before the group-commit window, so concurrent submitters share
// one fsync.
func (w *WAL) AppendBuffered(b *delta.Batch) (uint64, error) {
	var body bytes.Buffer
	if err := delta.WriteText(&body, b); err != nil {
		return 0, fmt.Errorf("ingest: encode batch: %w", err)
	}

	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	// Never rotate an empty segment: it would recreate the same
	// first-seq name, and an empty segment can only grow by appending.
	if w.segSize >= w.cfg.SegmentBytes && w.segSize > segHdrLen {
		if err := w.newSegmentLocked(); err != nil {
			w.failed = err
			w.mu.Unlock()
			return 0, err
		}
		w.updateGaugesLocked()
	}
	seq := w.nextSeq
	var frame bytes.Buffer
	var seqBuf [binary.MaxVarintLen64]byte
	nseq := binary.PutUvarint(seqBuf[:], seq)
	payloadLen := nseq + body.Len()
	var hdr [recHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	crc := crc32.Update(0, crcTable, seqBuf[:nseq])
	crc = crc32.Update(crc, crcTable, body.Bytes())
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	frame.Grow(recHdrLen + payloadLen)
	frame.Write(hdr[:])
	frame.Write(seqBuf[:nseq])
	frame.Write(body.Bytes())

	if _, err := w.seg.Write(frame.Bytes()); err != nil {
		w.failed = fmt.Errorf("ingest: torn WAL write at seq %d: %w", seq, err)
		err = w.failed
		w.mu.Unlock()
		return 0, err
	}
	w.nextSeq++
	w.written = seq
	w.segSize += int64(frame.Len())
	w.mu.Unlock()

	w.appends.Inc()
	w.appendedBy.Add(int64(frame.Len()))
	w.updateGauges()
	return seq, nil
}

// WaitDurable blocks until every record with sequence ≤ seq is covered
// by an fsync. With group commit the first waiter becomes leader: it
// sleeps out the window, syncs once, and publishes the new durable
// horizon for the group.
func (w *WAL) WaitDurable(seq uint64) error {
	if w.cfg.GroupCommit <= 0 {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.synced >= seq {
			return nil
		}
		if err := w.seg.Sync(); err != nil {
			w.failed = fmt.Errorf("ingest: fsync: %w", err)
			return w.failed
		}
		w.fsyncs.Inc()
		w.smu.Lock()
		w.synced = w.written
		w.smu.Unlock()
		return nil
	}
	w.smu.Lock()
	defer w.smu.Unlock()
	for w.synced < seq {
		if w.syncErr != nil {
			// lint:ignore lockbal the deferred unlock above covers this return; the leader's mid-loop unlock/relock confuses the path analysis
			return w.syncErr
		}
		if !w.syncing {
			w.syncing = true
			w.smu.Unlock()
			time.Sleep(w.cfg.GroupCommit)
			w.mu.Lock()
			err := w.seg.Sync()
			high := w.written
			if err != nil {
				w.failed = fmt.Errorf("ingest: fsync: %w", err)
				err = w.failed
			}
			w.mu.Unlock()
			w.fsyncs.Inc()
			w.smu.Lock()
			w.syncing = false
			if err != nil {
				w.syncErr = err
			} else if high > w.synced {
				w.synced = high
			}
			w.scond.Broadcast()
			continue
		}
		w.scond.Wait()
	}
	// lint:ignore lockbal the deferred unlock above covers this return; the leader's mid-loop unlock/relock confuses the path analysis
	return nil
}

// LastSeq returns the sequence of the most recently appended record
// (0 when the log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Replay streams every surviving record with sequence ≥ from to fn,
// in order. A torn tail in the active segment ends the replay without
// error (those bytes were never acknowledged); invalid bytes in a
// sealed segment are ErrCorrupt. fn returning an error aborts the
// replay with that error.
func (w *WAL) Replay(from uint64, fn func(seq uint64, b *delta.Batch) error) error {
	w.mu.Lock()
	segs := append([]segmentInfo(nil), w.segments...)
	w.mu.Unlock()
	for i, seg := range segs {
		last := i == len(segs)-1
		expect := seg.first
		_, _, err := scanSegment(seg.path, seg.first, func(seq uint64, payload []byte) error {
			expect = seq + 1
			if seq < from {
				return nil
			}
			b, err := delta.ReadText(bytes.NewReader(payload))
			if err != nil {
				return fmt.Errorf("%w: seq %d batch: %v", ErrCorrupt, seq, err)
			}
			return fn(seq, b)
		})
		_ = expect
		if err != nil {
			if last && isFrameError(err) {
				return nil // torn tail, never acknowledged
			}
			return err
		}
	}
	return nil
}

// frameError marks invalid framing (bad length, CRC, or sequence) as
// distinct from errors returned by the replay callback.
type frameError struct{ err error }

func (e *frameError) Error() string { return e.err.Error() }
func (e *frameError) Unwrap() error { return e.err }

func isFrameError(err error) bool {
	var fe *frameError
	return errors.As(err, &fe)
}

// isEOF reports whether a ReadFull failure is EOF-shaped — the file
// simply ended, the signature of a torn tail. Anything else (EIO, a
// closed file) is a real read failure and must never be classified as
// truncatable.
func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// scanSegment walks one segment file, calling visit for every valid
// record. It returns the byte offset just past the last valid record
// and the number of valid records. Framing violations (short header,
// oversized length, CRC mismatch, out-of-order sequence) return a
// *frameError wrapped in ErrCorrupt; the caller decides whether that
// is a truncatable tail (final segment) or real corruption. Only
// EOF-shaped reads count as framing violations: a genuine I/O error
// (e.g. EIO) is returned as-is, never a frameError, so it can never be
// mistaken for a torn tail and silently truncated.
func scanSegment(path string, firstSeq uint64, visit func(seq uint64, payload []byte) error) (validLen int64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := newCountingReader(f)

	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if !isEOF(err) {
			return 0, 0, fmt.Errorf("ingest: %s: reading segment header: %w", path, err)
		}
		return 0, 0, fmt.Errorf("%w: %s: short header: %w", ErrCorrupt, path, &frameError{err})
	}
	if string(hdr[0:4]) != segMagic || hdr[4] != segVersion {
		return 0, 0, fmt.Errorf("%w: %s: bad header: %w", ErrCorrupt, path, &frameError{fmt.Errorf("magic %q version %d", hdr[0:4], hdr[4])})
	}
	validLen = segHdrLen
	expect := firstSeq
	var rec [recHdrLen]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return validLen, records, nil
			}
			if !isEOF(err) {
				return validLen, records, fmt.Errorf("ingest: %s: reading record header: %w", path, err)
			}
			return validLen, records, fmt.Errorf("%w: %s: short record header: %w", ErrCorrupt, path, &frameError{err})
		}
		plen := binary.LittleEndian.Uint32(rec[0:4])
		wantCRC := binary.LittleEndian.Uint32(rec[4:8])
		if plen == 0 || plen > maxRecordBytes {
			return validLen, records, fmt.Errorf("%w: %s: record length %d out of range: %w", ErrCorrupt, path, plen, &frameError{fmt.Errorf("bad length")})
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if !isEOF(err) {
				return validLen, records, fmt.Errorf("ingest: %s: reading payload: %w", path, err)
			}
			return validLen, records, fmt.Errorf("%w: %s: short payload: %w", ErrCorrupt, path, &frameError{err})
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return validLen, records, fmt.Errorf("%w: %s: CRC mismatch at seq %d: %w", ErrCorrupt, path, expect, &frameError{fmt.Errorf("crc")})
		}
		seq, n := binary.Uvarint(payload)
		if n <= 0 || seq != expect {
			return validLen, records, fmt.Errorf("%w: %s: sequence %d out of order (want %d): %w", ErrCorrupt, path, seq, expect, &frameError{fmt.Errorf("seq")})
		}
		if visit != nil {
			if err := visit(seq, payload[n:]); err != nil {
				return validLen, records, err
			}
		}
		expect++
		records++
		validLen = r.count
	}
}

// countingReader tracks how many bytes have been consumed, so the
// scanner knows the exact offset of the last whole record.
type countingReader struct {
	r     io.Reader
	count int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.count += int64(n)
	return n, err
}

// TruncateThrough deletes sealed segments whose records all have
// sequence ≤ seq — the prefix a persisted snapshot has made redundant.
// The active segment is never deleted. Returns how many segments were
// removed.
func (w *WAL) TruncateThrough(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segments) >= 2 && w.segments[1].first <= seq+1 {
		path := w.segments[0].path
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("ingest: removing sealed segment: %w", err)
		}
		w.segments = w.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	w.updateGaugesLocked()
	return removed, nil
}

// Segments returns the number of live segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

func (w *WAL) updateGauges() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.updateGaugesLocked()
}

func (w *WAL) updateGaugesLocked() {
	w.segGauge.Set(float64(len(w.segments)))
	var size int64
	for _, seg := range w.segments[:max(0, len(w.segments)-1)] {
		if fi, err := os.Stat(seg.path); err == nil {
			size += fi.Size()
		}
	}
	w.sizeGauge.Set(float64(size + w.segSize))
}

// Close fsyncs and closes the active segment. Appends after Close
// fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	err := w.seg.Sync()
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	if w.failed == nil {
		w.failed = fmt.Errorf("ingest: WAL closed")
	}
	return err
}
