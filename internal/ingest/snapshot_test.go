package ingest

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/serve"
)

// testServeSnapshot builds a real servable snapshot: a 6-host graph,
// exact estimates from core {0,1}, and a config that carries the core
// (the delta and recovery paths both need it).
func testServeSnapshot(t testing.TB, epoch int64) *serve.Snapshot {
	t.Helper()
	g := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4},
	})
	names := []string{"a.example", "b.example", "c.example", "d.example", "e.example", "f.example"}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	core := []graph.NodeID{0, 1}
	est, err := mass.EstimateFromCore(g, core, mass.DefaultOptions())
	if err != nil {
		t.Fatalf("EstimateFromCore: %v", err)
	}
	snap, err := serve.NewSnapshot(h, est, serve.SnapshotConfig{
		Detect:   mass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 0.0},
		Gamma:    mass.DefaultOptions().Gamma,
		CoreSize: len(core),
		Core:     core,
	}, epoch)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return snap
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := testServeSnapshot(t, 9)
	st := SnapshotStateOf(snap, 42)
	path, err := WriteSnapshotFile(dir, st)
	if err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if got.Epoch != 9 || got.AppliedSeq != 42 {
		t.Fatalf("epoch/seq = %d/%d, want 9/42", got.Epoch, got.AppliedSeq)
	}
	if got.Damping != st.Damping || got.Gamma != st.Gamma {
		t.Fatalf("damping/gamma = %v/%v, want %v/%v", got.Damping, got.Gamma, st.Damping, st.Gamma)
	}
	if len(got.Core) != 2 || got.Core[0] != 0 || got.Core[1] != 1 {
		t.Fatalf("core = %v", got.Core)
	}
	for i := range st.P {
		if got.P[i] != st.P[i] || got.PCore[i] != st.PCore[i] {
			t.Fatalf("vector mismatch at %d: P %v vs %v, PCore %v vs %v", i, got.P[i], st.P[i], got.PCore[i], st.PCore[i])
		}
	}

	// The rebuilt snapshot serves the same records.
	rebuilt, err := got.BuildSnapshot(snap.Config().Detect, 0)
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	if rebuilt.Epoch() != 9 || rebuilt.NumHosts() != snap.NumHosts() {
		t.Fatalf("rebuilt epoch/hosts = %d/%d", rebuilt.Epoch(), rebuilt.NumHosts())
	}
	for _, name := range snap.HostGraph().Names {
		want, _ := snap.Lookup(name)
		gotRec, ok := rebuilt.Lookup(name)
		if !ok {
			t.Fatalf("rebuilt snapshot misses %s", name)
		}
		if math.Abs(gotRec.AbsMass-want.AbsMass) > 1e-12 || math.Abs(gotRec.RelMass-want.RelMass) > 1e-12 ||
			gotRec.PageRank != want.PageRank || gotRec.Label != want.Label {
			t.Errorf("%s: rebuilt record %+v, want %+v", name, gotRec, want)
		}
	}
}

func TestLatestSnapshotSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	older := SnapshotStateOf(testServeSnapshot(t, 3), 10)
	if _, err := WriteSnapshotFile(dir, older); err != nil {
		t.Fatal(err)
	}
	newer := SnapshotStateOf(testServeSnapshot(t, 5), 20)
	newPath, err := WriteSnapshotFile(dir, newer)
	if err != nil {
		t.Fatal(err)
	}

	// Undamaged: the newest wins.
	st, path, err := LatestSnapshot(dir, nil)
	if err != nil || st == nil || st.AppliedSeq != 20 {
		t.Fatalf("LatestSnapshot = (%v, %s, %v), want seq 20", st, path, err)
	}

	// Flip a byte mid-file: the CRC must reject it and the older
	// snapshot must be served instead.
	data, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	st, _, err = LatestSnapshot(dir, func(format string, args ...any) {
		logged.WriteString(format)
	})
	if err != nil || st == nil || st.AppliedSeq != 10 {
		t.Fatalf("after corruption LatestSnapshot seq = %v (err %v), want 10", st, err)
	}
	if !strings.Contains(logged.String(), "skipping") {
		t.Error("corrupt snapshot skipped silently")
	}

	// All snapshots corrupt or missing: (nil, nil) without error.
	if err := os.Remove(filepath.Join(dir, snapshotName(10, 3))); err != nil {
		t.Fatal(err)
	}
	st, _, err = LatestSnapshot(dir, nil)
	if err != nil || st != nil {
		t.Fatalf("with only a corrupt file LatestSnapshot = (%v, %v), want (nil, nil)", st, err)
	}
}

func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 4; i++ {
		st := SnapshotStateOf(testServeSnapshot(t, int64(i)), uint64(i*10))
		if _, err := WriteSnapshotFile(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	if err := pruneSnapshots(dir, 2); err != nil {
		t.Fatalf("pruneSnapshots: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if _, _, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots %v, want 2", len(snaps), snaps)
	}
	st, _, err := LatestSnapshot(dir, nil)
	if err != nil || st == nil || st.AppliedSeq != 40 {
		t.Fatalf("latest after prune = %v (err %v), want seq 40", st, err)
	}
}
