package eval

import (
	"fmt"
	"io"
	"strings"

	"spammass/internal/stats"
)

// Rendering helpers: plain-text tables and bar charts that let the
// experiment binaries print Table 2, Figure 3, Figure 4/5 curves, and
// Figure 6 histograms on a terminal.

// RenderGroupTable writes Table 2: relative-mass thresholds and sizes
// for the sample groups.
func RenderGroupTable(w io.Writer, groups []Group) error {
	if _, err := fmt.Fprintf(w, "%-8s %12s %12s %6s\n", "Group", "Smallest m~", "Largest m~", "Size"); err != nil {
		return err
	}
	for _, g := range groups {
		sz := g.Size + g.Unknown + g.Nonexist
		if _, err := fmt.Fprintf(w, "%-8d %12.2f %12.2f %6d\n", g.Index, g.SmallestRel, g.LargestRel, sz); err != nil {
			return err
		}
	}
	return nil
}

// RenderComposition writes the Figure 3 bar data: per group, the
// number of good / anomalous-good / spam hosts and the spam share.
func RenderComposition(w io.Writer, groups []Group) error {
	if _, err := fmt.Fprintf(w, "%-8s %6s %6s %6s %8s  %s\n", "Group", "Good", "Anom", "Spam", "Spam%", "Composition"); err != nil {
		return err
	}
	for _, g := range groups {
		usable := g.Good + g.Anomalous + g.Spam
		bar := compositionBar(g, 40)
		if _, err := fmt.Fprintf(w, "%-8d %6d %6d %6d %7.0f%%  %s\n",
			g.Index, g.Good, g.Anomalous, g.Spam, 100*g.SpamFrac(), bar); err != nil {
			return err
		}
		_ = usable
	}
	return nil
}

// compositionBar draws a stacked bar: '.' good, 'o' anomalous good,
// '#' spam, matching Figure 3's white/gray/black stacking.
func compositionBar(g Group, width int) string {
	usable := g.Good + g.Anomalous + g.Spam
	if usable == 0 {
		return ""
	}
	goodW := g.Good * width / usable
	anomW := g.Anomalous * width / usable
	spamW := width - goodW - anomW
	return strings.Repeat(".", goodW) + strings.Repeat("o", anomW) + strings.Repeat("#", spamW)
}

// RenderPrecisionCurve writes Figure 4/5-style data: one line per
// threshold with both precision variants and the host counts.
func RenderPrecisionCurve(w io.Writer, points []PrecisionPoint, countsAbove []int) error {
	header := fmt.Sprintf("%-10s %10s %10s %10s", "Threshold", "Prec(incl)", "Prec(excl)", "Sample>=")
	if countsAbove != nil {
		header += fmt.Sprintf(" %12s", "Hosts>=")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, pt := range points {
		line := fmt.Sprintf("%-10.2f %10.3f %10.3f %10d", pt.Threshold, pt.Included, pt.Excluded, pt.UsableAbove)
		if countsAbove != nil && i < len(countsAbove) {
			line += fmt.Sprintf(" %12d", countsAbove[i])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// RenderHistogram writes a log-binned histogram as an ASCII chart with
// one row per non-empty bin, bar length proportional to log density.
func RenderHistogram(w io.Writer, bins []stats.Bin, title string) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	maxCount := int64(0)
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount == 0 {
		_, err := fmt.Fprintln(w, "  (empty)")
		return err
	}
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		width := int(40 * float64(b.Count) / float64(maxCount))
		if width < 1 {
			width = 1
		}
		if _, err := fmt.Fprintf(w, "  [%11.1f, %11.1f) %9d %s\n", b.Lo, b.Hi, b.Count, strings.Repeat("*", width)); err != nil {
			return err
		}
	}
	return nil
}

// RenderCompositionSummary writes the Section 4.4.1 sample breakdown.
func RenderCompositionSummary(w io.Writer, c Composition) error {
	total := c.Total()
	if total == 0 {
		_, err := fmt.Fprintln(w, "empty sample")
		return err
	}
	_, err := fmt.Fprintf(w,
		"sample: %d hosts — good %d (%.1f%%), spam %d (%.1f%%), unknown %d (%.1f%%), nonexistent %d (%.1f%%)\n",
		total,
		c.Good, 100*float64(c.Good)/float64(total),
		c.Spam, 100*float64(c.Spam)/float64(total),
		c.Unknown, 100*float64(c.Unknown)/float64(total),
		c.Nonexistent, 100*float64(c.Nonexistent)/float64(total))
	return err
}
