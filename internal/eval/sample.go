// Package eval reproduces the paper's experimental methodology
// (Section 4): uniform sampling of the high-PageRank host set T,
// simulated editorial judgment of each sample host (with the paper's
// unknown / nonexistent outcome classes), bucketing of the sample into
// relative-mass groups (Table 2, Figure 3), precision curves for
// threshold sweeps (Figures 4 and 5), and the absolute-mass
// distribution analysis (Figure 6).
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/webgen"
)

// Judgment is the outcome of manually inspecting one sample host
// (Section 4.4.1).
type Judgment int

// Judgment outcomes. Unknown models hosts the editors could not
// classify (the paper's East Asian hosts, 6.1% of the sample);
// Nonexistent models hosts whose pages could not be accessed (5%).
// Both are excluded from precision computations, exactly as in the
// paper.
const (
	JudgedGood Judgment = iota
	JudgedSpam
	JudgedUnknown
	JudgedNonexistent
)

// String returns the judgment name.
func (j Judgment) String() string {
	switch j {
	case JudgedGood:
		return "good"
	case JudgedSpam:
		return "spam"
	case JudgedUnknown:
		return "unknown"
	default:
		return "nonexistent"
	}
}

// SampleHost is one judged member of the evaluation sample T'.
type SampleHost struct {
	Node     graph.NodeID
	RelMass  float64
	AbsMass  float64
	ScaledPR float64
	Judgment Judgment
	// Anomalous marks good hosts whose high relative mass stems from
	// one of the specific good-core anomalies (Section 4.4.1's gray
	// group: the uncovered e-commerce cluster, the isolated blog
	// community, the under-covered country).
	Anomalous bool
}

// JudgeConfig controls the simulated manual inspection.
type JudgeConfig struct {
	// UnknownFrac is the probability that an inspectable host defies
	// classification (paper: 6.1% — a cultural/linguistic challenge).
	UnknownFrac float64
	// Seed drives the judgment noise.
	Seed int64
}

// DefaultJudgeConfig matches the paper's sample composition rates.
func DefaultJudgeConfig() JudgeConfig {
	return JudgeConfig{UnknownFrac: 0.061, Seed: 99}
}

// Sample draws a uniform random sample of size k from the node set T
// and judges each host against the generated world's ground truth:
// frontier hosts (never crawled) come back nonexistent, a configurable
// fraction defies classification, and the rest are labeled by ground
// truth — the synthetic stand-in for the paper's careful manual
// inspection of contents, links, and neighbors.
func Sample(T []graph.NodeID, k int, est *mass.Estimates, w *webgen.World, cfg JudgeConfig) ([]SampleHost, error) {
	if len(T) == 0 {
		return nil, fmt.Errorf("eval: empty node set T")
	}
	if k <= 0 || k > len(T) {
		return nil, fmt.Errorf("eval: sample size %d outside [1,%d]", k, len(T))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(T))[:k]
	out := make([]SampleHost, 0, k)
	for _, i := range perm {
		x := T[i]
		h := SampleHost{
			Node:     x,
			RelMass:  est.Rel[x],
			AbsMass:  est.ScaledAbsMass(x),
			ScaledPR: est.ScaledPageRank(x),
		}
		info := w.Info[x]
		switch {
		case info.Kind == webgen.KindFrontier || info.Kind == webgen.KindIsolated:
			h.Judgment = JudgedNonexistent
		case rng.Float64() < cfg.UnknownFrac:
			h.Judgment = JudgedUnknown
		case info.Kind.Spam():
			h.Judgment = JudgedSpam
		default:
			h.Judgment = JudgedGood
			h.Anomalous = info.Anomalous
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RelMass < out[j].RelMass })
	return out, nil
}

// Composition counts the sample by judgment, the quantities reported
// at the start of Section 4.4.1 (good 63.2%, spam 25.7%, unknown 6.1%,
// nonexistent 5%).
type Composition struct {
	Good, Spam, Unknown, Nonexistent int
}

// Total returns the sample size.
func (c Composition) Total() int { return c.Good + c.Spam + c.Unknown + c.Nonexistent }

// Compose tallies judgments over a sample.
func Compose(sample []SampleHost) Composition {
	var c Composition
	for _, h := range sample {
		switch h.Judgment {
		case JudgedGood:
			c.Good++
		case JudgedSpam:
			c.Spam++
		case JudgedUnknown:
			c.Unknown++
		case JudgedNonexistent:
			c.Nonexistent++
		}
	}
	return c
}

// Usable filters a sample down to the hosts that enter precision
// computations: judged good or spam (unknown and nonexistent hosts are
// excluded, as in the paper).
func Usable(sample []SampleHost) []SampleHost {
	out := make([]SampleHost, 0, len(sample))
	for _, h := range sample {
		if h.Judgment == JudgedGood || h.Judgment == JudgedSpam {
			out = append(out, h)
		}
	}
	return out
}
