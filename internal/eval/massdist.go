package eval

import (
	"fmt"

	"spammass/internal/mass"
	"spammass/internal/stats"
)

// MassDistribution is the Figure 6 analysis: log-binned histograms of
// the scaled absolute mass estimates, split into the negative and
// positive branches (a single log scale cannot span both), plus the
// fitted power-law exponent of the positive tail (paper: −2.31).
type MassDistribution struct {
	Negative []stats.Bin // binned over |M̃| for M̃ ≤ −NegMin
	Positive []stats.Bin
	// PositiveExponent is the log-log regression slope of the
	// positive branch density.
	PositiveExponent float64
	// PositiveMLEAlpha is the MLE power-law exponent of the positive
	// tail (reported as −alpha to compare with the paper's −2.31).
	PositiveMLEAlpha float64
	// MinMass and MaxMass are the extremes of the scaled estimates
	// (paper: −268,099 to 132,332).
	MinMass, MaxMass float64
}

// MassDistributionConfig tunes the binning and fitting.
type MassDistributionConfig struct {
	// BinsPerDecade for the log-binned histograms.
	BinsPerDecade int
	// TailXMin is the lower cutoff (in scaled mass units) for the
	// positive power-law fits.
	TailXMin float64
}

// DefaultMassDistributionConfig mirrors the Figure 6 axes: whole-unit
// scaled mass from 1 upward, a handful of bins per decade.
func DefaultMassDistributionConfig() MassDistributionConfig {
	return MassDistributionConfig{BinsPerDecade: 4, TailXMin: 10}
}

// AnalyzeMassDistribution bins the scaled absolute mass estimates of
// every node and fits the positive tail.
func AnalyzeMassDistribution(est *mass.Estimates, cfg MassDistributionConfig) (*MassDistribution, error) {
	if cfg.BinsPerDecade <= 0 {
		return nil, fmt.Errorf("eval: BinsPerDecade must be positive")
	}
	scale := float64(est.N()) / (1 - est.Damping)
	var pos, neg []float64
	d := &MassDistribution{}
	for x, m := range est.Abs {
		s := m * scale
		if x == 0 || s < d.MinMass {
			d.MinMass = s
		}
		if x == 0 || s > d.MaxMass {
			d.MaxMass = s
		}
		switch {
		case s >= 1:
			pos = append(pos, s)
		case s <= -1:
			neg = append(neg, -s)
		}
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("eval: no positive scaled mass estimates ≥ 1")
	}
	maxPos := 1.0
	for _, v := range pos {
		if v > maxPos {
			maxPos = v
		}
	}
	edges, err := stats.LogBins(1, maxPos, cfg.BinsPerDecade)
	if err != nil {
		return nil, err
	}
	if d.Positive, err = stats.Histogram(pos, edges); err != nil {
		return nil, err
	}
	if len(neg) > 0 {
		maxNeg := 1.0
		for _, v := range neg {
			if v > maxNeg {
				maxNeg = v
			}
		}
		edges, err := stats.LogBins(1, maxNeg, cfg.BinsPerDecade)
		if err != nil {
			return nil, err
		}
		if d.Negative, err = stats.Histogram(neg, edges); err != nil {
			return nil, err
		}
	}
	if d.PositiveExponent, err = stats.PowerLawRegression(d.Positive); err != nil {
		return nil, fmt.Errorf("eval: positive-branch regression: %w", err)
	}
	alpha, _, err := stats.PowerLawMLE(pos, cfg.TailXMin)
	if err != nil {
		return nil, fmt.Errorf("eval: positive-tail MLE: %w", err)
	}
	d.PositiveMLEAlpha = alpha
	return d, nil
}
