package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spammass/internal/stats"
)

// CSV writers for the figure data, so the paper's plots can be
// regenerated in any external plotting tool from the suite's output.

// WriteGroupsCSV writes the Table 2 / Figure 3 data: one row per
// sample group with bounds and composition.
func WriteGroupsCSV(w io.Writer, groups []Group) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "smallest_rel_mass", "largest_rel_mass",
		"good", "anomalous", "spam", "unknown", "nonexistent"}); err != nil {
		return err
	}
	for _, g := range groups {
		if err := cw.Write([]string{
			strconv.Itoa(g.Index),
			formatFloat(g.SmallestRel),
			formatFloat(g.LargestRel),
			strconv.Itoa(g.Good),
			strconv.Itoa(g.Anomalous),
			strconv.Itoa(g.Spam),
			strconv.Itoa(g.Unknown),
			strconv.Itoa(g.Nonexist),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePrecisionCSV writes Figure 4/5 curve data: one row per
// threshold per named curve.
func WritePrecisionCSV(w io.Writer, curves map[string][]PrecisionPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"curve", "threshold", "precision_included",
		"precision_excluded", "spam_above", "usable_above"}); err != nil {
		return err
	}
	for name, points := range curves {
		for _, p := range points {
			if err := cw.Write([]string{
				name,
				formatFloat(p.Threshold),
				formatFloat(p.Included),
				formatFloat(p.Excluded),
				strconv.Itoa(p.SpamAbove),
				strconv.Itoa(p.UsableAbove),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHistogramCSV writes Figure 6 branch data: one row per bin.
func WriteHistogramCSV(w io.Writer, branches map[string][]stats.Bin) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"branch", "lo", "hi", "count", "density"}); err != nil {
		return err
	}
	for name, bins := range branches {
		for _, b := range bins {
			if b.Count == 0 {
				continue
			}
			if err := cw.Write([]string{
				name,
				formatFloat(b.Lo),
				formatFloat(b.Hi),
				strconv.FormatInt(b.Count, 10),
				formatFloat(b.Density),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// WriteSampleCSV dumps the judged sample itself for external analysis.
func WriteSampleCSV(w io.Writer, sample []SampleHost) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "scaled_pagerank", "rel_mass", "abs_mass", "judgment", "anomalous"}); err != nil {
		return err
	}
	for _, h := range sample {
		if err := cw.Write([]string{
			fmt.Sprint(h.Node),
			formatFloat(h.ScaledPR),
			formatFloat(h.RelMass),
			formatFloat(h.AbsMass),
			h.Judgment.String(),
			strconv.FormatBool(h.Anomalous),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
