package eval

import (
	"fmt"
	"math/rand"
	"sort"
)

// The paper's precision numbers are estimates from a ~900-host sample;
// bootstrap resampling quantifies the sampling error those estimates
// carry (the paper reports point estimates only).

// ConfidenceInterval is a two-sided bootstrap interval for a precision
// estimate.
type ConfidenceInterval struct {
	Point, Lo, Hi float64
}

// BootstrapPrecision estimates prec(τ) together with a bootstrap
// percentile confidence interval at the given level (e.g. 0.95), by
// resampling the usable hosts above the threshold with replacement.
func BootstrapPrecision(sample []SampleHost, tau float64, level float64, iters int, seed int64) (ConfidenceInterval, error) {
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, fmt.Errorf("eval: confidence level %v outside (0,1)", level)
	}
	if iters < 10 {
		return ConfidenceInterval{}, fmt.Errorf("eval: need at least 10 bootstrap iterations, got %d", iters)
	}
	var above []bool // true = spam, over usable hosts with m̃ ≥ τ
	for _, h := range sample {
		if h.RelMass < tau {
			continue
		}
		switch h.Judgment {
		case JudgedSpam:
			above = append(above, true)
		case JudgedGood:
			above = append(above, false)
		}
	}
	if len(above) == 0 {
		return ConfidenceInterval{}, fmt.Errorf("eval: no usable hosts above τ = %v", tau)
	}
	spam := 0
	for _, s := range above {
		if s {
			spam++
		}
	}
	ci := ConfidenceInterval{Point: float64(spam) / float64(len(above))}

	rng := rand.New(rand.NewSource(seed))
	precs := make([]float64, iters)
	for it := range precs {
		hits := 0
		for i := 0; i < len(above); i++ {
			if above[rng.Intn(len(above))] {
				hits++
			}
		}
		precs[it] = float64(hits) / float64(len(above))
	}
	sort.Float64s(precs)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(iters))
	hi := int((1 - alpha) * float64(iters))
	if hi >= iters {
		hi = iters - 1
	}
	ci.Lo, ci.Hi = precs[lo], precs[hi]
	return ci, nil
}
