package eval

import (
	"encoding/csv"
	"sort"
	"strings"
	"testing"

	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/stats"
	"spammass/internal/webgen"
)

// worldFixture builds a small world with mass estimates once per test
// binary run.
type fixture struct {
	world *webgen.World
	est   *mass.Estimates
	T     []graph.NodeID
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	w, err := webgen.Generate(webgen.DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mass.EstimateFromCore(w.Graph, core.Nodes, mass.Options{
		Solver: pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300},
		Gamma:  0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	shared = &fixture{world: w, est: est, T: mass.FilterByPageRank(est, 10)}
	return shared
}

func sampleFixture(t *testing.T) []SampleHost {
	f := getFixture(t)
	s, err := Sample(f.T, len(f.T)*3/4, f.est, f.world, DefaultJudgeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampleSortedAndJudged(t *testing.T) {
	s := sampleFixture(t)
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].RelMass < s[j].RelMass }) {
		t.Error("sample not sorted by relative mass")
	}
	f := getFixture(t)
	for _, h := range s {
		switch h.Judgment {
		case JudgedSpam:
			if !f.world.IsSpam(h.Node) {
				t.Fatalf("host %d judged spam but ground truth is good", h.Node)
			}
		case JudgedGood:
			if f.world.IsSpam(h.Node) {
				t.Fatalf("host %d judged good but ground truth is spam", h.Node)
			}
		case JudgedNonexistent:
			kind := f.world.Info[h.Node].Kind
			if kind != webgen.KindFrontier && kind != webgen.KindIsolated {
				t.Fatalf("host %d judged nonexistent but kind is %v", h.Node, kind)
			}
		}
	}
}

func TestSampleComposition(t *testing.T) {
	s := sampleFixture(t)
	c := Compose(s)
	if c.Total() != len(s) {
		t.Fatalf("composition total %d, sample %d", c.Total(), len(s))
	}
	// The judge config targets the paper's rates loosely.
	unknownFrac := float64(c.Unknown) / float64(c.Total())
	if unknownFrac < 0.02 || unknownFrac > 0.12 {
		t.Errorf("unknown fraction %.3f far from the configured 6.1%%", unknownFrac)
	}
	if c.Spam == 0 || c.Good == 0 {
		t.Error("sample has no spam or no good hosts")
	}
	if got := len(Usable(s)); got != c.Good+c.Spam {
		t.Errorf("Usable returned %d, want %d", got, c.Good+c.Spam)
	}
}

func TestSampleErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := Sample(nil, 1, f.est, f.world, DefaultJudgeConfig()); err == nil {
		t.Error("empty T accepted")
	}
	if _, err := Sample(f.T, 0, f.est, f.world, DefaultJudgeConfig()); err == nil {
		t.Error("zero sample size accepted")
	}
	if _, err := Sample(f.T, len(f.T)+1, f.est, f.world, DefaultJudgeConfig()); err == nil {
		t.Error("oversized sample accepted")
	}
}

func TestSplitGroups(t *testing.T) {
	s := sampleFixture(t)
	groups, err := SplitGroups(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 20 {
		t.Fatalf("%d groups, want 20", len(groups))
	}
	total := 0
	for i, g := range groups {
		total += g.Size + g.Unknown + g.Nonexist
		if g.Index != i+1 {
			t.Errorf("group %d has index %d", i, g.Index)
		}
		if g.SmallestRel > g.LargestRel {
			t.Errorf("group %d bounds inverted: [%v, %v]", g.Index, g.SmallestRel, g.LargestRel)
		}
		if i > 0 && g.SmallestRel < groups[i-1].LargestRel-1e-12 {
			t.Errorf("group %d overlaps group %d", g.Index, groups[i-1].Index)
		}
	}
	if total != len(s) {
		t.Errorf("groups cover %d hosts, sample has %d", total, len(s))
	}
	// Group sizes near-equal: within 1 of each other.
	for _, g := range groups {
		sz := g.Size + g.Unknown + g.Nonexist
		if sz < len(s)/20-1 || sz > len(s)/20+1 {
			t.Errorf("group %d size %d far from %d", g.Index, sz, len(s)/20)
		}
	}
}

func TestSplitGroupsErrors(t *testing.T) {
	s := sampleFixture(t)
	if _, err := SplitGroups(s, 0); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := SplitGroups(s, len(s)+1); err == nil {
		t.Error("more groups than hosts accepted")
	}
	shuffled := append([]SampleHost(nil), s...)
	shuffled[0], shuffled[len(shuffled)-1] = shuffled[len(shuffled)-1], shuffled[0]
	if _, err := SplitGroups(shuffled, 5); err == nil {
		t.Error("unsorted sample accepted")
	}
}

func TestPrecisionCurveMonotoneCounts(t *testing.T) {
	s := sampleFixture(t)
	groups, err := SplitGroups(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := GroupThresholds(groups)
	points := PrecisionCurve(s, thresholds)
	if len(points) != len(thresholds) {
		t.Fatalf("%d points for %d thresholds", len(points), len(thresholds))
	}
	for i := range points {
		if points[i].Included < 0 || points[i].Included > 1 || points[i].Excluded < 0 || points[i].Excluded > 1 {
			t.Errorf("point %d precision outside [0,1]: %+v", i, points[i])
		}
		if points[i].Excluded < points[i].Included-1e-12 {
			t.Errorf("point %d: excluding anomalies lowered precision", i)
		}
		if i > 0 && points[i].UsableAbove < points[i-1].UsableAbove {
			t.Errorf("point %d: usable count decreased as threshold decreased", i)
		}
	}
	// Thresholds strictly descending and ending at 0.
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] >= thresholds[i-1] {
			t.Errorf("thresholds not strictly descending at %d: %v", i, thresholds)
		}
	}
	if thresholds[len(thresholds)-1] != 0 {
		t.Error("threshold list does not end at 0")
	}
}

func TestCountAbove(t *testing.T) {
	rel := []float64{0.5, -0.1, 0.9, 0.2}
	ok := []bool{true, true, true, false}
	// Node 3 (rel 0.2) is filtered out by pageRankOK.
	got := CountAbove(rel, ok, []float64{0.9, 0.3, 0})
	want := []int{1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CountAbove[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAnalyzeMassDistribution(t *testing.T) {
	f := getFixture(t)
	d, err := AnalyzeMassDistribution(f.est, DefaultMassDistributionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.MinMass >= 0 {
		t.Error("no negative mass estimates; core members must go negative under the scaled jump")
	}
	if d.MaxMass <= 0 {
		t.Error("no positive mass estimates")
	}
	if d.PositiveExponent >= 0 {
		t.Errorf("positive branch exponent %v, want negative (decaying power law)", d.PositiveExponent)
	}
	// The paper reports −2.31; the synthetic tail should land in a
	// plausible band around a decaying power law.
	if d.PositiveExponent < -4.5 || d.PositiveExponent > -1.0 {
		t.Errorf("positive branch exponent %v outside plausible band [-4.5, -1.0]", d.PositiveExponent)
	}
	if len(d.Negative) == 0 {
		t.Error("negative branch empty")
	}
}

func TestAnalyzeMassDistributionErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := AnalyzeMassDistribution(f.est, MassDistributionConfig{BinsPerDecade: 0}); err == nil {
		t.Error("zero bins per decade accepted")
	}
}

func TestRenderers(t *testing.T) {
	s := sampleFixture(t)
	groups, err := SplitGroups(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderGroupTable(&sb, groups); err != nil {
		t.Fatal(err)
	}
	if err := RenderComposition(&sb, groups); err != nil {
		t.Fatal(err)
	}
	points := PrecisionCurve(s, GroupThresholds(groups))
	if err := RenderPrecisionCurve(&sb, points, nil); err != nil {
		t.Fatal(err)
	}
	if err := RenderCompositionSummary(&sb, Compose(s)); err != nil {
		t.Fatal(err)
	}
	f := getFixture(t)
	d, err := AnalyzeMassDistribution(f.est, DefaultMassDistributionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderHistogram(&sb, d.Positive, "positive"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Group", "Spam%", "Threshold", "sample:", "positive"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestJudgmentString(t *testing.T) {
	names := map[Judgment]string{
		JudgedGood: "good", JudgedSpam: "spam",
		JudgedUnknown: "unknown", JudgedNonexistent: "nonexistent",
	}
	for j, want := range names {
		if j.String() != want {
			t.Errorf("Judgment(%d).String() = %q, want %q", j, j.String(), want)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	s := sampleFixture(t)
	groups, err := SplitGroups(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGroupsCSV(&sb, groups); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 11 { // header + 10 groups
		t.Errorf("groups CSV has %d lines, want 11", lines)
	}
	sb.Reset()
	points := PrecisionCurve(s, GroupThresholds(groups))
	if err := WritePrecisionCSV(&sb, map[string][]PrecisionPoint{"full": points}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(points)+1 {
		t.Errorf("precision CSV has %d lines, want %d", got, len(points)+1)
	}
	sb.Reset()
	f := getFixture(t)
	d, err := AnalyzeMassDistribution(f.est, DefaultMassDistributionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteHistogramCSV(&sb, map[string][]stats.Bin{"positive": d.Positive, "negative": d.Negative}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "positive") || !strings.Contains(sb.String(), "negative") {
		t.Error("histogram CSV missing branches")
	}
	sb.Reset()
	if err := WriteSampleCSV(&sb, s[:5]); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 6 {
		t.Errorf("sample CSV has %d lines, want 6", got)
	}
	// Every CSV parses back cleanly.
	for _, data := range []string{sb.String()} {
		if _, err := csv.NewReader(strings.NewReader(data)).ReadAll(); err != nil {
			t.Errorf("CSV does not re-parse: %v", err)
		}
	}
}

func TestBootstrapPrecision(t *testing.T) {
	s := sampleFixture(t)
	ci, err := BootstrapPrecision(s, 0.9, 0.95, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Errorf("interval [%v, %v] does not bracket the point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Lo < 0 || ci.Hi > 1 {
		t.Errorf("interval [%v, %v] outside [0,1]", ci.Lo, ci.Hi)
	}
	// A wider level must give a narrower interval... inverted: 0.5 vs 0.95.
	narrow, err := BootstrapPrecision(s, 0.9, 0.5, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Hi-narrow.Lo > ci.Hi-ci.Lo {
		t.Errorf("50%% interval wider than 95%%: %v vs %v", narrow.Hi-narrow.Lo, ci.Hi-ci.Lo)
	}
	// Validation.
	if _, err := BootstrapPrecision(s, 0.9, 1.5, 100, 1); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := BootstrapPrecision(s, 0.9, 0.95, 5, 1); err == nil {
		t.Error("too few iterations accepted")
	}
	if _, err := BootstrapPrecision(s, 2.0, 0.95, 100, 1); err == nil {
		t.Error("threshold above all masses accepted")
	}
	// Determinism.
	a, _ := BootstrapPrecision(s, 0.5, 0.95, 200, 42)
	b, _ := BootstrapPrecision(s, 0.5, 0.95, 200, 42)
	if a != b {
		t.Error("bootstrap not deterministic for a fixed seed")
	}
}
