package eval

import (
	"fmt"
	"sort"
)

// Group is one of the relative-mass sample groups of Table 2 /
// Figure 3: a contiguous slice of the sample ordered by relative mass,
// together with its composition.
type Group struct {
	Index             int // 1-based, as in the paper
	SmallestRel       float64
	LargestRel        float64
	Size              int // judged-usable hosts in the group
	Good, Spam        int
	Anomalous         int // good hosts in the gray anomaly classes
	Unknown, Nonexist int
}

// SpamFrac returns the fraction of spam among the group's usable
// hosts (the percentage printed atop each Figure 3 bar is the good
// fraction; this is its complement together with the anomalies).
func (g Group) SpamFrac() float64 {
	usable := g.Good + g.Spam + g.Anomalous
	if usable == 0 {
		return 0
	}
	return float64(g.Spam) / float64(usable)
}

// SplitGroups splits a sample (sorted ascending by relative mass —
// Sample returns it that way) into count groups of near-equal size,
// the Section 4.4.1 procedure ("a compromise between approximately
// equal group sizes and relevant thresholds"). All sample hosts count
// toward group sizes; unknown and nonexistent hosts are tallied but
// excluded from the good/spam splits, mirroring Figure 3's discarding.
func SplitGroups(sample []SampleHost, count int) ([]Group, error) {
	if count <= 0 || count > len(sample) {
		return nil, fmt.Errorf("eval: cannot split %d hosts into %d groups", len(sample), count)
	}
	if !sort.SliceIsSorted(sample, func(i, j int) bool { return sample[i].RelMass < sample[j].RelMass }) {
		return nil, fmt.Errorf("eval: sample not sorted by relative mass")
	}
	groups := make([]Group, 0, count)
	for gi := 0; gi < count; gi++ {
		lo := gi * len(sample) / count
		hi := (gi + 1) * len(sample) / count
		g := Group{Index: gi + 1, SmallestRel: sample[lo].RelMass, LargestRel: sample[hi-1].RelMass}
		for _, h := range sample[lo:hi] {
			switch h.Judgment {
			case JudgedGood:
				if h.Anomalous {
					g.Anomalous++
				} else {
					g.Good++
				}
				g.Size++
			case JudgedSpam:
				g.Spam++
				g.Size++
			case JudgedUnknown:
				g.Unknown++
			default:
				g.Nonexist++
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// PrecisionPoint is one point of the Figure 4 / Figure 5 curves.
type PrecisionPoint struct {
	Threshold float64
	// Included counts anomalous good hosts as false positives;
	// Excluded disregards them (the two curves of Figure 4).
	Included, Excluded float64
	// SpamAbove / UsableAbove are the raw counts behind the estimate.
	SpamAbove, UsableAbove int
}

// PrecisionCurve evaluates prec(τ) over the sample for each threshold:
// the fraction of spam among usable sample hosts with m̃ ≥ τ.
func PrecisionCurve(sample []SampleHost, thresholds []float64) []PrecisionPoint {
	out := make([]PrecisionPoint, 0, len(thresholds))
	for _, tau := range thresholds {
		var spam, usable, anom int
		for _, h := range sample {
			if h.RelMass < tau {
				continue
			}
			switch h.Judgment {
			case JudgedSpam:
				spam++
				usable++
			case JudgedGood:
				usable++
				if h.Anomalous {
					anom++
				}
			}
		}
		pt := PrecisionPoint{Threshold: tau, SpamAbove: spam, UsableAbove: usable}
		if usable > 0 {
			pt.Included = float64(spam) / float64(usable)
		}
		if usable-anom > 0 {
			pt.Excluded = float64(spam) / float64(usable-anom)
		}
		out = append(out, pt)
	}
	return out
}

// GroupThresholds derives a descending threshold list from group
// boundaries, the way the Figure 4 horizontal axis is built from the
// sample group boundaries of Table 2: the smallest relative mass of
// each group with a positive lower bound, then 0.
func GroupThresholds(groups []Group) []float64 {
	var out []float64
	for i := len(groups) - 1; i >= 0; i-- {
		t := groups[i].SmallestRel
		if t > 0 && (len(out) == 0 || t < out[len(out)-1]) {
			out = append(out, t)
		}
	}
	out = append(out, 0)
	return out
}

// CountAbove returns, for each threshold, how many of the full node
// set's relative-mass estimates lie at or above it — the "total number
// of hosts above threshold" row along the top of Figure 4.
func CountAbove(rel []float64, pageRankOK []bool, thresholds []float64) []int {
	out := make([]int, len(thresholds))
	for i, tau := range thresholds {
		c := 0
		for x, r := range rel {
			if pageRankOK[x] && r >= tau {
				c++
			}
		}
		out[i] = c
	}
	return out
}
