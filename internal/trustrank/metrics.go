package trustrank

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// PairwiseOrderedness is the evaluation metric of the TrustRank paper:
// for a set of judged nodes, the fraction of ordered pairs the score
// ranks correctly — every good node should outrank every spam node.
// 1.0 means perfect separation; 0.5 is chance.
func PairwiseOrderedness(scores pagerank.Vector, good, spam []graph.NodeID) (float64, error) {
	if len(good) == 0 || len(spam) == 0 {
		return 0, fmt.Errorf("trustrank: need both good (%d) and spam (%d) judgments", len(good), len(spam))
	}
	correct := 0.0
	for _, g := range good {
		if int(g) >= len(scores) {
			return 0, fmt.Errorf("trustrank: judged node %d outside score vector", g)
		}
		for _, s := range spam {
			if int(s) >= len(scores) {
				return 0, fmt.Errorf("trustrank: judged node %d outside score vector", s)
			}
			switch {
			case scores[g] > scores[s]:
				correct++
			// lint:ignore floatcmp exact ties get half credit, the standard pairwise-accuracy convention
			case scores[g] == scores[s]:
				correct += 0.5
			}
		}
	}
	return correct / float64(len(good)*len(spam)), nil
}

// SeedStrategy names a way of choosing TrustRank seed candidates, the
// comparison the TrustRank paper runs (inverse PageRank vs high
// PageRank vs random).
type SeedStrategy int

// Seed strategies.
const (
	SeedInversePageRank SeedStrategy = iota
	SeedHighPageRank
	SeedRandom
)

// String names the strategy.
func (s SeedStrategy) String() string {
	switch s {
	case SeedInversePageRank:
		return "inverse-pagerank"
	case SeedHighPageRank:
		return "high-pagerank"
	default:
		return "random"
	}
}

// SelectSeedsBy picks up to maxSeeds oracle-approved seeds from the
// top candidates of the chosen strategy. SeedRandom uses a
// deterministic stride over the node space (callers wanting different
// draws can permute IDs themselves).
func SelectSeedsBy(g *graph.Graph, strategy SeedStrategy, oracle Oracle, candidates, maxSeeds int, cfg pagerank.Config) ([]graph.NodeID, error) {
	if candidates <= 0 || maxSeeds <= 0 {
		return nil, fmt.Errorf("trustrank: candidates (%d) and maxSeeds (%d) must be positive", candidates, maxSeeds)
	}
	var order []graph.NodeID
	switch strategy {
	case SeedInversePageRank:
		return SelectSeeds(g, oracle, candidates, maxSeeds, cfg)
	case SeedHighPageRank:
		res, err := pagerank.Jacobi(g, pagerank.UniformJump(g.NumNodes()), cfg)
		if err != nil {
			return nil, err
		}
		order = rankDescending(res.Scores)
	case SeedRandom:
		n := g.NumNodes()
		stride := n/candidates + 1
		for i := 0; i < n && len(order) < candidates; i += stride {
			order = append(order, graph.NodeID(i))
		}
	default:
		return nil, fmt.Errorf("trustrank: unknown seed strategy %d", strategy)
	}
	if candidates > len(order) {
		candidates = len(order)
	}
	var seeds []graph.NodeID
	for _, x := range order[:candidates] {
		if oracle(x) {
			seeds = append(seeds, x)
			if len(seeds) == maxSeeds {
				break
			}
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("trustrank: oracle approved none of the %d candidates", candidates)
	}
	return seeds, nil
}

func rankDescending(scores pagerank.Vector) []graph.NodeID {
	order := make([]graph.NodeID, len(scores))
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break keeps the ranking a strict weak ordering
		if scores[order[i]] != scores[order[j]] {
			return scores[order[i]] > scores[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}
