package trustrank

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

func cfg() pagerank.Config { return pagerank.DefaultConfig() }

// TestComputeSeparatesSpam: on the Figure 2 graph, seeding trust at
// the good nodes gives every spam node zero trust (no walks from good
// seeds reach them), while the good-supported nodes score positive.
func TestComputeSeparatesSpam(t *testing.T) {
	f := paperfig.NewFigure2()
	trust, err := Compute(f.Graph, f.GoodNodes(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.S {
		if trust[s] != 0 {
			t.Errorf("spam node %d has trust %v, want 0", s, trust[s])
		}
	}
	for _, g := range f.G {
		if trust[g] <= 0 {
			t.Errorf("good node %d has trust %v, want > 0", g, trust[g])
		}
	}
	// The target x is reachable from good seeds, so TrustRank alone
	// does not flag it — this is exactly the detection gap the
	// spam-mass paper fills.
	if trust[f.X] <= 0 {
		t.Errorf("target x has trust %v; it should inherit some trust", trust[f.X])
	}
}

func TestComputeValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	if _, err := Compute(g, nil, cfg()); err == nil {
		t.Error("empty seed set accepted")
	}
	if _, err := Compute(g, []graph.NodeID{7}, cfg()); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := Compute(g, []graph.NodeID{1, 1}, cfg()); err == nil {
		t.Error("duplicate seed accepted")
	}
}

// TestInversePageRankFavorsBroadcasters: a node that reaches everything
// outranks a node that reaches nothing.
func TestInversePageRankFavorsBroadcasters(t *testing.T) {
	// 0 → 1 → 2 → 3; node 0 reaches all, node 3 reaches none.
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	inv, err := InversePageRank(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !(inv[3] > inv[2] && inv[2] > inv[1] && inv[1] > inv[0]) {
		// Inverse PageRank runs on the transpose, so 3 collects the
		// chain's mass... verify the transpose direction explicitly.
		t.Logf("inverse scores: %v", inv)
	}
	// On the transpose the chain runs 3 → 2 → 1 → 0, so node 0
	// accumulates the most inverse PageRank — but seed selection wants
	// nodes that REACH many others, which on the original graph is
	// node 0. Confirm node 0 ranks first.
	if inv[0] <= inv[3] {
		t.Errorf("node 0 (reaches 3 nodes) scores %v, node 3 (reaches none) scores %v", inv[0], inv[3])
	}
}

func TestSelectSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 100, 4)
	spam := map[graph.NodeID]bool{3: true, 10: true, 50: true}
	oracle := func(x graph.NodeID) bool { return !spam[x] }
	seeds, err := SelectSeeds(g, oracle, 20, 10, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 || len(seeds) > 10 {
		t.Fatalf("%d seeds, want 1..10", len(seeds))
	}
	for _, s := range seeds {
		if spam[s] {
			t.Errorf("oracle-rejected node %d selected as seed", s)
		}
	}
	if _, err := SelectSeeds(g, oracle, 0, 5, cfg()); err == nil {
		t.Error("zero candidates accepted")
	}
	if _, err := SelectSeeds(g, func(graph.NodeID) bool { return false }, 10, 5, cfg()); err == nil {
		t.Error("all-rejecting oracle did not error")
	}
}

func TestDemotionRank(t *testing.T) {
	trust := pagerank.Vector{0.1, 0.5, 0.0, 0.3}
	order := DemotionRank(trust)
	want := []graph.NodeID{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDemoted(t *testing.T) {
	trust := pagerank.Vector{0.1, 0.5, 0.0, 0.3}
	got := Demoted(trust, 0.2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Demoted = %v, want [0 2]", got)
	}
}

// TestTrustRankIsBiasedPageRank: with all nodes as seeds, TrustRank
// equals PageRank with the uniform jump.
func TestTrustRankIsBiasedPageRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testutil.RandomGraph(rng, 40, 3)
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	trust, err := Compute(g, all, cfg())
	if err != nil {
		t.Fatal(err)
	}
	pr := pagerank.PR(g, pagerank.UniformJump(g.NumNodes()), cfg())
	if d := testutil.MaxAbsDiff(trust, pr); d > 1e-10 {
		t.Errorf("full-seed TrustRank differs from PageRank by %v", d)
	}
}

func TestPairwiseOrderedness(t *testing.T) {
	scores := pagerank.Vector{0.9, 0.8, 0.1, 0.2, 0.5}
	po, err := PairwiseOrderedness(scores, []graph.NodeID{0, 1}, []graph.NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if po != 1 {
		t.Errorf("perfect separation scored %v, want 1", po)
	}
	po, err = PairwiseOrderedness(scores, []graph.NodeID{2, 3}, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if po != 0 {
		t.Errorf("inverted separation scored %v, want 0", po)
	}
	// Ties get half credit.
	po, err = PairwiseOrderedness(pagerank.Vector{0.5, 0.5}, []graph.NodeID{0}, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if po != 0.5 {
		t.Errorf("tie scored %v, want 0.5", po)
	}
	if _, err := PairwiseOrderedness(scores, nil, []graph.NodeID{1}); err == nil {
		t.Error("missing good judgments accepted")
	}
	if _, err := PairwiseOrderedness(scores, []graph.NodeID{9}, []graph.NodeID{1}); err == nil {
		t.Error("out-of-range judgment accepted")
	}
}

// TestSeedStrategies: on the Figure 2 graph extended with a farm, the
// inverse-PageRank strategy must find usable seeds, and all strategies
// must reject oracle-disapproved nodes.
func TestSeedStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := testutil.RandomGraph(rng, 200, 4)
	spam := map[graph.NodeID]bool{}
	for i := 0; i < 40; i++ {
		spam[graph.NodeID(rng.Intn(200))] = true
	}
	oracle := func(x graph.NodeID) bool { return !spam[x] }
	for _, strategy := range []SeedStrategy{SeedInversePageRank, SeedHighPageRank, SeedRandom} {
		seeds, err := SelectSeedsBy(g, strategy, oracle, 50, 10, cfg())
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if len(seeds) == 0 || len(seeds) > 10 {
			t.Fatalf("%v: %d seeds", strategy, len(seeds))
		}
		for _, s := range seeds {
			if spam[s] {
				t.Errorf("%v: spam node %d selected", strategy, s)
			}
		}
		if strategy.String() == "" {
			t.Error("empty strategy name")
		}
	}
	if _, err := SelectSeedsBy(g, SeedStrategy(9), oracle, 10, 5, cfg()); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := SelectSeedsBy(g, SeedRandom, oracle, 0, 5, cfg()); err == nil {
		t.Error("zero candidates accepted")
	}
}
