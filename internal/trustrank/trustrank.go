// Package trustrank implements TrustRank (Gyöngyi, Garcia-Molina,
// Pedersen: "Combating Web Spam with TrustRank", VLDB 2004) — the
// paper's own prior work, which Section 5 positions as complementary:
// TrustRank *demotes* spam by identifying reputable nodes, while spam
// mass *detects* it.
//
// TrustRank is a biased PageRank whose random jump is restricted to a
// small, highly selective seed of superior-quality nodes — in contrast
// to the mass estimator's good core, which should be as large as
// possible (Section 3.4). Seed candidates are picked by inverse
// PageRank (coverage: how many nodes a node reaches) and then filtered
// by an oracle.
package trustrank

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// Oracle answers whether a node is reputable. In the original system
// this is a human editor; in experiments it is ground truth.
type Oracle func(graph.NodeID) bool

// InversePageRank computes PageRank on the transposed graph: nodes
// from which many other nodes can be reached quickly score high. It is
// the seed-candidate ranking heuristic of the TrustRank paper.
func InversePageRank(g *graph.Graph, cfg pagerank.Config) (pagerank.Vector, error) {
	sp := cfg.Obs.Span("trustrank.inverse_pagerank")
	defer sp.End()
	cfg.Obs = cfg.Obs.In(sp)
	t := g.Transpose()
	eng, err := pagerank.NewEngine(t, cfg)
	if err != nil {
		return nil, fmt.Errorf("trustrank: inverse PageRank: %w", err)
	}
	defer eng.Close()
	res, err := eng.Solve(pagerank.UniformJump(t.NumNodes()))
	if err != nil {
		return nil, fmt.Errorf("trustrank: inverse PageRank: %w", err)
	}
	return res.Scores, nil
}

// SelectSeeds ranks all nodes by inverse PageRank, inspects the top
// candidates with the oracle, and returns up to maxSeeds nodes the
// oracle approves, in inspection order. candidates bounds the number
// of oracle invocations (the scarce resource in the original setting).
func SelectSeeds(g *graph.Graph, oracle Oracle, candidates, maxSeeds int, cfg pagerank.Config) ([]graph.NodeID, error) {
	if candidates <= 0 || maxSeeds <= 0 {
		return nil, fmt.Errorf("trustrank: candidates (%d) and maxSeeds (%d) must be positive", candidates, maxSeeds)
	}
	inv, err := InversePageRank(g, cfg)
	if err != nil {
		return nil, err
	}
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break keeps the ranking a strict weak ordering
		if inv[order[i]] != inv[order[j]] {
			return inv[order[i]] > inv[order[j]]
		}
		return order[i] < order[j]
	})
	if candidates > len(order) {
		candidates = len(order)
	}
	var seeds []graph.NodeID
	for _, x := range order[:candidates] {
		if oracle(graph.NodeID(x)) {
			seeds = append(seeds, graph.NodeID(x))
			if len(seeds) == maxSeeds {
				break
			}
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("trustrank: oracle approved none of the %d candidates", candidates)
	}
	return seeds, nil
}

// Compute returns the TrustRank score vector: the linear PageRank for
// a jump distribution uniform over the seed set with total weight 1.
func Compute(g *graph.Graph, seeds []graph.NodeID, cfg pagerank.Config) (pagerank.Vector, error) {
	eng, err := pagerank.NewEngine(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("trustrank: %w", err)
	}
	defer eng.Close()
	return ComputeOn(eng, seeds)
}

// ComputeOn is Compute against an existing solver engine, so callers
// that already hold one for the graph (experiments, baselines) reuse
// its cached out-degree and dangling state instead of rebuilding it.
func ComputeOn(eng *pagerank.Engine, seeds []graph.NodeID) (pagerank.Vector, error) {
	g := eng.Graph()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("trustrank: empty seed set")
	}
	seen := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		if int(s) >= g.NumNodes() {
			return nil, fmt.Errorf("trustrank: seed %d outside graph of %d nodes", s, g.NumNodes())
		}
		if seen[s] {
			return nil, fmt.Errorf("trustrank: duplicate seed %d", s)
		}
		seen[s] = true
	}
	octx := eng.Config().Obs
	sp := octx.Span("trustrank.compute")
	defer sp.End()
	sp.SetAttr("seeds", len(seeds))
	cfg := eng.Config()
	cfg.Obs = octx.In(sp)
	v := pagerank.CoreJump(g.NumNodes(), seeds, 1/float64(len(seeds)))
	res, err := eng.SolveConfig(v, cfg)
	if err != nil {
		return nil, fmt.Errorf("trustrank: biased PageRank: %w", err)
	}
	return res.Scores, nil
}

// DemotionRank orders nodes for ranking purposes: by TrustRank score
// descending. Spam pages, unreachable from the reputable seed, sink to
// the bottom — demotion rather than detection.
func DemotionRank(trust pagerank.Vector) []graph.NodeID {
	order := make([]graph.NodeID, len(trust))
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break keeps the ranking a strict weak ordering
		if trust[order[i]] != trust[order[j]] {
			return trust[order[i]] > trust[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// Demoted returns the nodes whose trust score falls below threshold —
// the closest TrustRank analogue of a spam-candidate set, used when
// comparing against mass-based detection. Note the TrustRank paper
// itself argues against using it this way; the comparison benches
// quantify exactly that gap.
func Demoted(trust pagerank.Vector, threshold float64) []graph.NodeID {
	var out []graph.NodeID
	for x, s := range trust {
		if s < threshold {
			out = append(out, graph.NodeID(x))
		}
	}
	return out
}
