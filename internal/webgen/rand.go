package webgen

import (
	"math"
	"math/rand"
)

// zipfIdx samples an index in [0, n) with probability approximately
// proportional to (i+1)^(−theta), 0 < theta < 1, by inverse-CDF
// sampling of the continuous relaxation. Small indices are the
// "popular" hosts of a block: preferential attachment à la Chung-Lu.
func zipfIdx(rng *rand.Rand, n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	e := 1 - theta
	u := rng.Float64()
	x := math.Pow(u*(math.Pow(float64(n)+1, e)-1)+1, 1/e)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// plInt samples an integer from a power law p(d) ∝ d^(−a) on
// [lo, hi], a > 1, by inverse transform of the continuous density.
func plInt(rng *rand.Rand, lo, hi int, a float64) int {
	if hi <= lo {
		return lo
	}
	u := rng.Float64()
	e := 1 - a
	l, h := float64(lo), float64(hi)+1
	x := l * math.Pow(1-u*(1-math.Pow(h/l, e)), 1/e)
	d := int(x)
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

// weightedPick samples an index with probability proportional to the
// (non-negative) weights, which must not all be zero.
func weightedPick(rng *rand.Rand, cumulative []float64) int {
	total := cumulative[len(cumulative)-1]
	u := rng.Float64() * total
	lo, hi := 0, len(cumulative)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cumulative[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cumSum turns weights into a cumulative table for weightedPick.
func cumSum(weights []float64) []float64 {
	out := make([]float64, len(weights))
	s := 0.0
	for i, w := range weights {
		s += w
		out[i] = s
	}
	return out
}
