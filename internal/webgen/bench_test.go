package webgen

import (
	"fmt"
	"testing"
)

func BenchmarkGenerate(b *testing.B) {
	for _, n := range []int{20000, 150000} {
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) {
			cfg := DefaultConfig(n)
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
