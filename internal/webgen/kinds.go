// Package webgen generates synthetic host-level web graphs with the
// structural properties the paper's experiments depend on. It is the
// substitute for the proprietary Yahoo! 2004 crawl (73.3M hosts, 979M
// edges): power-law degrees and PageRank, the reported fractions of
// inlink-free / outlink-free / isolated hosts, good-core-eligible
// populations (directory, governmental, and per-country educational
// hosts), spam farms with boosting nodes and alliances, honey-pot
// stray links, expired-domain spam, and the anomalous good communities
// of Section 4.4 (a large uncovered e-commerce cluster, an isolated
// blog community, an under-covered country, and isolated good
// cliques). Ground-truth labels replace editorial judgment.
package webgen

import "spammass/internal/graph"

// Kind classifies a generated host.
type Kind uint8

// Host kinds. Frontier hosts model URLs seen in links but never
// crawled (no outlinks); isolated hosts model extinct or misspelled
// hosts (Section 4.1 explains both).
const (
	KindIsolated Kind = iota
	KindFrontier
	KindGood      // ordinary good host (mainstream or country web)
	KindDirectory // member of the trusted web directory
	KindGov       // governmental host
	KindEdu       // educational host
	KindSpamTarget
	KindBooster
	KindExpiredSpam // spam on a bought expired domain (good inlinks)
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindIsolated:
		return "isolated"
	case KindFrontier:
		return "frontier"
	case KindGood:
		return "good"
	case KindDirectory:
		return "directory"
	case KindGov:
		return "gov"
	case KindEdu:
		return "edu"
	case KindSpamTarget:
		return "spam-target"
	case KindBooster:
		return "booster"
	case KindExpiredSpam:
		return "expired-spam"
	default:
		return "unknown"
	}
}

// Spam reports whether the kind is a spam host in the ground truth.
func (k Kind) Spam() bool {
	return k == KindSpamTarget || k == KindBooster || k == KindExpiredSpam
}

// NodeInfo is the ground truth for one host.
type NodeInfo struct {
	Kind Kind
	// Community names the sub-web a host belongs to: "mainstream",
	// a country code ("pl", "cz", ...), or a special community
	// ("alibaba", "brblogs", "clique-17", "farm-42"). Frontier and
	// isolated hosts have community "".
	Community string
	// Country is the two-letter code for hosts attached to a national
	// web ("" for mainstream and special communities).
	Country string
	// Anomalous marks good hosts the evaluation displays in gray
	// (Figure 3): members of communities the good core cannot reach
	// well, for structural rather than spam reasons.
	Anomalous bool
}

// Farm records one generated spam farm (Section 2.3 model): a single
// target plus boosting nodes, optionally strengthened by honey-pot
// stray links from reputable hosts and allied with other farms.
type Farm struct {
	Target   graph.NodeID
	Boosters []graph.NodeID
	// Honeypot is the number of stray links captured from good hosts.
	Honeypot int
	// Alliance is the alliance index, or -1 for an independent farm.
	Alliance int
}

// World is a generated host graph plus its ground truth.
type World struct {
	Graph *graph.Graph
	// Names[x] is the synthetic host name of node x (the good-core
	// assembly parses these, mirroring the paper's URL pipeline).
	Names []string
	// Info[x] is the ground truth for node x.
	Info []NodeInfo

	Farms       []Farm
	ExpiredSpam []graph.NodeID
	// DirectoryMembers lists hosts in the trusted web directory
	// (the Section 4.2 core ingredient that is a membership list, not
	// a name pattern).
	DirectoryMembers []graph.NodeID
	// CommunityHubs maps special-community names to their hub hosts —
	// e.g. the 12 key alibaba.com hosts whose addition to the core
	// eliminates that anomaly in Section 4.4.2.
	CommunityHubs map[string][]graph.NodeID
}

// IsSpam reports the ground-truth label of x.
func (w *World) IsSpam(x graph.NodeID) bool { return w.Info[x].Kind.Spam() }

// SpamNodes returns all ground-truth spam hosts.
func (w *World) SpamNodes() []graph.NodeID {
	var out []graph.NodeID
	for x := range w.Info {
		if w.Info[x].Kind.Spam() {
			out = append(out, graph.NodeID(x))
		}
	}
	return out
}

// GoodNodes returns all ground-truth good hosts (including frontier
// and isolated hosts, which nobody controls for spamming).
func (w *World) GoodNodes() []graph.NodeID {
	var out []graph.NodeID
	for x := range w.Info {
		if !w.Info[x].Kind.Spam() {
			out = append(out, graph.NodeID(x))
		}
	}
	return out
}

// CountByKind returns how many hosts have each kind.
func (w *World) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, info := range w.Info {
		m[info.Kind]++
	}
	return m
}
