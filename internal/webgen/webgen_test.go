package webgen

import (
	"testing"

	"spammass/internal/graph"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	w, err := Generate(DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(5000)
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Graph.NumNodes() != w2.Graph.NumNodes() || w1.Graph.NumEdges() != w2.Graph.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d/%d vs %d/%d nodes/edges",
			w1.Graph.NumNodes(), w1.Graph.NumEdges(), w2.Graph.NumNodes(), w2.Graph.NumEdges())
	}
	equal := true
	w1.Graph.Edges(func(x, y graph.NodeID) bool {
		if !w2.Graph.HasEdge(x, y) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Error("same seed produced different edge sets")
	}
	cfg.Seed = 2
	w3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Graph.NumEdges() == w1.Graph.NumEdges() {
		t.Log("different seeds produced identical edge counts (possible but unlikely)")
	}
}

func TestGeneratedGraphValid(t *testing.T) {
	w := smallWorld(t)
	if err := w.Graph.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if len(w.Names) != w.Graph.NumNodes() || len(w.Info) != w.Graph.NumNodes() {
		t.Fatalf("names/info length mismatch: %d/%d for %d nodes", len(w.Names), len(w.Info), w.Graph.NumNodes())
	}
	seen := make(map[string]bool, len(w.Names))
	for _, name := range w.Names {
		if name == "" {
			t.Fatal("empty host name")
		}
		if seen[name] {
			t.Fatalf("duplicate host name %q", name)
		}
		seen[name] = true
	}
}

// TestStructuralFractions checks the Section 4.1 statistics the
// generator is calibrated to: ~35% without inlinks, ~66.4% without
// outlinks, ~25.8% isolated.
func TestStructuralFractions(t *testing.T) {
	w := smallWorld(t)
	st := graph.ComputeStats(w.Graph)
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"no inlinks", st.FracNoInlinks(), 0.30, 0.43},
		{"no outlinks", st.FracNoOutlinks(), 0.62, 0.71},
		{"isolated", st.FracIsolated(), 0.23, 0.33},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s fraction %.3f outside calibrated band [%.2f, %.2f]", c.name, c.got, c.lo, c.hi)
		}
	}
}

// TestSpamFraction: ~15% of hosts are spam, as the paper's experiments
// conservatively assume.
func TestSpamFraction(t *testing.T) {
	w := smallWorld(t)
	spam := len(w.SpamNodes())
	frac := float64(spam) / float64(w.Graph.NumNodes())
	if frac < 0.12 || frac > 0.18 {
		t.Errorf("spam fraction %.3f outside [0.12, 0.18]", frac)
	}
	if len(w.GoodNodes())+spam != w.Graph.NumNodes() {
		t.Error("good + spam does not cover all hosts")
	}
}

// TestFarmStructure: every booster links to its farm's target, and
// targets are recorded as spam.
func TestFarmStructure(t *testing.T) {
	w := smallWorld(t)
	if len(w.Farms) == 0 {
		t.Fatal("no farms generated")
	}
	allied := 0
	for fi, f := range w.Farms {
		if w.Info[f.Target].Kind != KindSpamTarget {
			t.Fatalf("farm %d target kind %v", fi, w.Info[f.Target].Kind)
		}
		if len(f.Boosters) < 3 {
			t.Fatalf("farm %d has only %d boosters", fi, len(f.Boosters))
		}
		for _, booster := range f.Boosters {
			if w.Info[booster].Kind != KindBooster {
				t.Fatalf("farm %d booster kind %v", fi, w.Info[booster].Kind)
			}
			if !w.Graph.HasEdge(booster, f.Target) {
				t.Fatalf("farm %d: booster %d does not link to target", fi, booster)
			}
		}
		if f.Alliance >= 0 {
			allied++
		}
	}
	if allied == 0 {
		t.Error("no allied farms despite AllianceFrac > 0")
	}
}

// TestFrontierAndIsolated: frontier hosts have no outlinks; isolated
// hosts have neither inlinks nor outlinks.
func TestFrontierAndIsolated(t *testing.T) {
	w := smallWorld(t)
	for x := range w.Info {
		id := graph.NodeID(x)
		switch w.Info[x].Kind {
		case KindFrontier:
			if w.Graph.OutDegree(id) != 0 {
				t.Fatalf("frontier host %d has outlinks", x)
			}
		case KindIsolated:
			if w.Graph.OutDegree(id) != 0 || w.Graph.InDegree(id) != 0 {
				t.Fatalf("isolated host %d has edges", x)
			}
		}
	}
}

// TestAnomalousCommunities: alibaba and brblogs receive essentially no
// links from outside their own community (that is what makes their
// relative mass estimates anomalously high), and the Polish community
// is marked anomalous with near-zero edu coverage.
func TestAnomalousCommunities(t *testing.T) {
	w := smallWorld(t)
	counts := map[string]struct{ members, externalIn int }{}
	for x, info := range w.Info {
		if info.Community == "alibaba" || info.Community == "brblogs" {
			c := counts[info.Community]
			c.members++
			for _, y := range w.Graph.InNeighbors(graph.NodeID(x)) {
				if w.Info[y].Community != info.Community {
					c.externalIn++
				}
			}
			counts[info.Community] = c
		}
	}
	for name, c := range counts {
		if c.members == 0 {
			t.Fatalf("community %s empty", name)
		}
		if float64(c.externalIn) > 0.02*float64(c.members) {
			t.Errorf("community %s has %d external inlinks for %d members; should be nearly isolated from the covered web",
				name, c.externalIn, c.members)
		}
	}
	if len(w.CommunityHubs["alibaba"]) == 0 {
		t.Error("no alibaba hubs recorded")
	}
	plEdu, plAnomalous := 0, 0
	for _, info := range w.Info {
		if info.Country == "pl" {
			if info.Kind == KindEdu {
				plEdu++
			}
			if info.Anomalous {
				plAnomalous++
			}
		}
	}
	if plEdu > 3 {
		t.Errorf("Polish edu coverage %d hosts; the anomaly needs it near zero", plEdu)
	}
	if plAnomalous == 0 {
		t.Error("no Polish hosts marked anomalous")
	}
}

// TestExpiredDomainSpam: expired-domain spam draws inlinks from good
// mainstream hosts only.
func TestExpiredDomainSpam(t *testing.T) {
	w := smallWorld(t)
	if len(w.ExpiredSpam) == 0 {
		t.Fatal("no expired-domain spam generated")
	}
	for _, e := range w.ExpiredSpam {
		if w.Info[e].Kind != KindExpiredSpam {
			t.Fatalf("expired host %d has kind %v", e, w.Info[e].Kind)
		}
		in := w.Graph.InNeighbors(e)
		if len(in) == 0 {
			t.Fatalf("expired host %d has no inlinks", e)
		}
		for _, y := range in {
			if w.Info[y].Kind.Spam() {
				t.Fatalf("expired host %d receives a link from spam host %d; its mass must come from good hosts", e, y)
			}
		}
	}
}

func TestCountByKindCoversAll(t *testing.T) {
	w := smallWorld(t)
	total := 0
	for _, c := range w.CountByKind() {
		total += c
	}
	if total != w.Graph.NumNodes() {
		t.Errorf("kind counts sum to %d, want %d", total, w.Graph.NumNodes())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Hosts = 50 },
		func(c *Config) { c.FracIsolated = 1.2 },
		func(c *Config) { c.FracIsolated = 0.5; c.FracFrontier = 0.4; c.FracSpam = 0.1 },
		func(c *Config) { c.DirectoryShare = 0.9 },
		func(c *Config) { c.BoosterMin = 0 },
		func(c *Config) { c.BoosterMax = 5; c.BoosterMin = 10 },
		func(c *Config) { c.BoosterExp = 1 },
		func(c *Config) { c.CliqueMin = 1 },
		func(c *Config) { c.SubcultureMin = 5 },
		func(c *Config) { c.Countries = nil },
		func(c *Config) { c.MeanOutDeg = 0.5 },
		func(c *Config) { c.ZipfTheta = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(10000)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig(10000).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k := KindIsolated; k <= KindExpiredSpam; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind not reported unknown")
	}
}

func TestKindSpam(t *testing.T) {
	spamKinds := map[Kind]bool{KindSpamTarget: true, KindBooster: true, KindExpiredSpam: true}
	for k := KindIsolated; k <= KindExpiredSpam; k++ {
		if k.Spam() != spamKinds[k] {
			t.Errorf("Kind(%v).Spam() = %v", k, k.Spam())
		}
	}
}
