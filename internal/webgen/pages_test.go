package webgen

import (
	"testing"

	"spammass/internal/graph"
)

// TestExpandCollapseRoundTrip: collapsing the page-level expansion
// must recover exactly the host graph — the Section 4.1 pipeline.
func TestExpandCollapseRoundTrip(t *testing.T) {
	w, err := Generate(DefaultConfig(6000))
	if err != nil {
		t.Fatal(err)
	}
	pw, err := ExpandPages(w, DefaultPageConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pw.Graph.NumNodes() < w.Graph.NumNodes() {
		t.Fatalf("%d pages for %d hosts", pw.Graph.NumNodes(), w.Graph.NumNodes())
	}
	if err := pw.Graph.Validate(); err != nil {
		t.Fatalf("page graph invalid: %v", err)
	}

	h, err := graph.CollapseToHosts(pw.Graph, pw.URLs)
	if err != nil {
		t.Fatal(err)
	}
	if h.Graph.NumNodes() != w.Graph.NumNodes() {
		t.Fatalf("collapsed to %d hosts, want %d", h.Graph.NumNodes(), w.Graph.NumNodes())
	}
	// Host IDs after collapsing follow first-page order, which is
	// host-ID order, so the graphs must be identical edge for edge.
	if h.Graph.NumEdges() != w.Graph.NumEdges() {
		t.Fatalf("collapsed to %d edges, want %d", h.Graph.NumEdges(), w.Graph.NumEdges())
	}
	equal := true
	w.Graph.Edges(func(x, y graph.NodeID) bool {
		if !h.Graph.HasEdge(x, y) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Fatal("collapsed edge set differs from the host graph")
	}
	// Host names round-trip through the URLs.
	for hID := 0; hID < w.Graph.NumNodes(); hID++ {
		if got, ok := h.NodeByName(w.Names[hID]); !ok || got != graph.NodeID(hID) {
			t.Fatalf("host %q mapped to %d,%v, want %d", w.Names[hID], got, ok, hID)
		}
	}
}

func TestExpandPagesStructure(t *testing.T) {
	w, err := Generate(DefaultConfig(6000))
	if err != nil {
		t.Fatal(err)
	}
	pw, err := ExpandPages(w, DefaultPageConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pw.URLs) != pw.Graph.NumNodes() || len(pw.HostOf) != pw.Graph.NumNodes() {
		t.Fatal("URL/host tables out of sync with the page graph")
	}
	// Every page's URL host matches its HostOf entry.
	for p := 0; p < pw.Graph.NumNodes(); p++ {
		if graph.HostOf(pw.URLs[p]) != w.Names[pw.HostOf[p]] {
			t.Fatalf("page %d URL %q does not match host %q", p, pw.URLs[p], w.Names[pw.HostOf[p]])
		}
	}
	// The page graph must be denser than the host graph (fan-out > 1
	// plus intra-host navigation).
	if pw.Graph.NumEdges() <= w.Graph.NumEdges() {
		t.Errorf("page graph has %d edges, host graph %d; expansion should add links",
			pw.Graph.NumEdges(), w.Graph.NumEdges())
	}
}

func TestExpandPagesValidation(t *testing.T) {
	w, err := Generate(DefaultConfig(6000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandPages(w, PageConfig{MaxPagesPerHost: 0, FanOut: 2}); err == nil {
		t.Error("MaxPagesPerHost 0 accepted")
	}
	if _, err := ExpandPages(w, PageConfig{MaxPagesPerHost: 3, FanOut: 0.5}); err == nil {
		t.Error("FanOut < 1 accepted")
	}
}
