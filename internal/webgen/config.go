package webgen

import "fmt"

// Country describes one national sub-web. EduShare is its share of the
// worldwide educational host population (the paper's core drew 434,045
// edu hosts from ~150 countries); WebShare is its share of the
// non-mainstream national web population. A country with a large
// WebShare but near-zero EduShare reproduces the paper's Polish
// anomaly: a sizable community the good core barely covers.
type Country struct {
	Code     string
	EduShare float64
	WebShare float64
}

// DefaultCountries returns the national mix used by the experiments.
// The .it share matches the paper's Italian-core experiment (9,747 of
// 434,045 edu hosts ≈ 2.2%); .cz vs .pl reproduces the coverage
// imbalance called out in Section 4.4.1 (4,020 Czech educational hosts
// in the core against 12 Polish ones, while Poland's web is the larger
// of the two).
func DefaultCountries() []Country {
	return []Country{
		{Code: "us", EduShare: 0.40, WebShare: 0.28},
		{Code: "de", EduShare: 0.08, WebShare: 0.12},
		{Code: "uk", EduShare: 0.08, WebShare: 0.10},
		{Code: "jp", EduShare: 0.07, WebShare: 0.09},
		{Code: "fr", EduShare: 0.06, WebShare: 0.08},
		{Code: "cn", EduShare: 0.05, WebShare: 0.08},
		{Code: "ca", EduShare: 0.05, WebShare: 0.04},
		{Code: "it", EduShare: 0.022, WebShare: 0.05},
		{Code: "au", EduShare: 0.04, WebShare: 0.03},
		{Code: "es", EduShare: 0.03, WebShare: 0.03},
		{Code: "kr", EduShare: 0.03, WebShare: 0.025},
		{Code: "nl", EduShare: 0.025, WebShare: 0.02},
		{Code: "br", EduShare: 0.02, WebShare: 0.025},
		{Code: "se", EduShare: 0.02, WebShare: 0.015},
		{Code: "cz", EduShare: 0.016, WebShare: 0.01},
		{Code: "mx", EduShare: 0.015, WebShare: 0.015},
		{Code: "ch", EduShare: 0.012, WebShare: 0.01},
		{Code: "fi", EduShare: 0.01, WebShare: 0.008},
		{Code: "at", EduShare: 0.01, WebShare: 0.007},
		{Code: "pl", EduShare: 0.0001, WebShare: 0.03}, // the anomaly
	}
}

// Config controls generation. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// Hosts is the total number of hosts n.
	Hosts int
	// Seed makes generation deterministic.
	Seed int64

	// FracIsolated and FracFrontier reproduce the Section 4.1
	// structure: 25.8% isolated hosts and 40.6% hosts that have
	// inlinks but no outlinks (together the 66.4% without outlinks).
	FracIsolated float64
	FracFrontier float64

	// FracSpam is the fraction of all hosts that are spam (targets +
	// boosters + expired-domain spam). The paper's experiments assume
	// conservatively that at least 15% of hosts are spam.
	FracSpam float64

	// CoreEligibleFrac is the fraction of all hosts eligible for the
	// good core (directory + gov + edu); the paper's core of 504,150
	// hosts is ≈0.69% of the 73.3M-host graph.
	CoreEligibleFrac float64
	// DirectoryShare, GovShare, EduShare split the core-eligible
	// population (paper: 16,776 / 55,320 / 434,045).
	DirectoryShare, GovShare, EduShare float64

	// Countries is the national mix (see DefaultCountries).
	Countries []Country
	// CountryWebFrac is the fraction of all hosts living in national
	// webs rather than the mainstream web.
	CountryWebFrac float64

	// AlibabaHosts, AlibabaHubs configure the large uncovered
	// e-commerce community; BrBlogHosts the isolated blog community;
	// CliqueCount/CliqueMin/CliqueMax the isolated good cliques.
	AlibabaHosts, AlibabaHubs int
	BrBlogHosts               int
	CliqueCount               int
	CliqueMin, CliqueMax      int

	// Subcultures is the number of mid-size interest communities
	// (hobby forums, fan sites, niche industries) that interlink
	// heavily and receive little endorsement from the core-covered
	// web. Their popular hosts are good but carry moderate positive
	// relative mass — the honest false-positive population that gives
	// Figure 4 its gradual precision decline toward the ~48% floor.
	Subcultures                  int
	SubcultureMin, SubcultureMax int

	// Farms is the number of spam farms. Booster counts are drawn
	// from a discrete power law on [BoosterMin, BoosterMax] with
	// exponent BoosterExp; serious spammers employ up to thousands of
	// boosting nodes (Section 2.3).
	Farms                  int
	BoosterMin, BoosterMax int
	BoosterExp             float64
	// HoneypotFrac is the fraction of farms that captured stray links
	// from reputable hosts; AllianceFrac the fraction participating
	// in multi-farm alliances.
	HoneypotFrac, AllianceFrac float64
	// ExpiredDomains is the number of spam hosts whose PageRank comes
	// from lingering good links to an expired reputable domain — the
	// false-negative class of Section 4.4.
	ExpiredDomains int

	// MeanOutDeg shapes the mainstream out-degree power law; ZipfTheta
	// shapes in-link preferential attachment (Chung-Lu weights
	// (i+1)^-θ). Both default to values calibrated so that roughly 1%
	// of hosts clear the scaled-PageRank-10 bar, as in the paper.
	MeanOutDeg float64
	ZipfTheta  float64
}

// DefaultConfig returns a calibrated configuration for n hosts.
func DefaultConfig(n int) Config {
	return Config{
		Hosts:            n,
		Seed:             1,
		FracIsolated:     0.258,
		FracFrontier:     0.406,
		FracSpam:         0.15,
		CoreEligibleFrac: 0.0069,
		DirectoryShare:   0.033,
		GovShare:         0.110,
		EduShare:         0.857,
		Countries:        DefaultCountries(),
		CountryWebFrac:   0.04,
		AlibabaHosts:     max(12, n/375),
		AlibabaHubs:      12,
		BrBlogHosts:      max(10, n/250),
		CliqueCount:      max(1, n/1500),
		CliqueMin:        8,
		CliqueMax:        30,
		Subcultures:      max(1, n/4000),
		SubcultureMin:    60,
		SubcultureMax:    400,
		Farms:            max(1, n/480),
		BoosterMin:       12,
		BoosterMax:       max(24, n/75),
		BoosterExp:       2.0,
		HoneypotFrac:     0.55,
		AllianceFrac:     0.25,
		ExpiredDomains:   max(1, n/7500),
		MeanOutDeg:       8,
		ZipfTheta:        0.8,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate checks the configuration for consistency.
func (cfg Config) Validate() error {
	if cfg.Hosts < 100 {
		return fmt.Errorf("webgen: need at least 100 hosts, got %d", cfg.Hosts)
	}
	for name, f := range map[string]float64{
		"FracIsolated": cfg.FracIsolated, "FracFrontier": cfg.FracFrontier,
		"FracSpam": cfg.FracSpam, "CoreEligibleFrac": cfg.CoreEligibleFrac,
		"HoneypotFrac": cfg.HoneypotFrac, "AllianceFrac": cfg.AllianceFrac,
		"CountryWebFrac": cfg.CountryWebFrac,
	} {
		if f < 0 || f >= 1 {
			return fmt.Errorf("webgen: %s = %v outside [0,1)", name, f)
		}
	}
	if cfg.FracIsolated+cfg.FracFrontier+cfg.FracSpam >= 0.95 {
		return fmt.Errorf("webgen: isolated+frontier+spam fractions leave no room for good active hosts")
	}
	if s := cfg.DirectoryShare + cfg.GovShare + cfg.EduShare; s < 0.99 || s > 1.01 {
		return fmt.Errorf("webgen: core shares sum to %v, want 1", s)
	}
	if cfg.BoosterMin < 1 || cfg.BoosterMax < cfg.BoosterMin {
		return fmt.Errorf("webgen: booster range [%d,%d] invalid", cfg.BoosterMin, cfg.BoosterMax)
	}
	if cfg.BoosterExp <= 1 {
		return fmt.Errorf("webgen: booster exponent %v must exceed 1", cfg.BoosterExp)
	}
	if cfg.CliqueMin < 3 || cfg.CliqueMax < cfg.CliqueMin {
		return fmt.Errorf("webgen: clique range [%d,%d] invalid", cfg.CliqueMin, cfg.CliqueMax)
	}
	if cfg.Subcultures > 0 && (cfg.SubcultureMin < 10 || cfg.SubcultureMax < cfg.SubcultureMin) {
		return fmt.Errorf("webgen: subculture range [%d,%d] invalid", cfg.SubcultureMin, cfg.SubcultureMax)
	}
	if len(cfg.Countries) == 0 {
		return fmt.Errorf("webgen: no countries configured")
	}
	if cfg.MeanOutDeg < 1 {
		return fmt.Errorf("webgen: mean out-degree %v below 1", cfg.MeanOutDeg)
	}
	if cfg.ZipfTheta <= 0 || cfg.ZipfTheta >= 1 {
		return fmt.Errorf("webgen: zipf theta %v outside (0,1)", cfg.ZipfTheta)
	}
	return nil
}
