package webgen

import (
	"fmt"
	"math/rand"

	"spammass/internal/graph"
)

// EvolveConfig tunes one time step of spam churn.
type EvolveConfig struct {
	Seed int64
}

// EvolveSpam advances the world one spam generation: Section 3.4
// observes that "spam nodes come and go on the web — spammers
// frequently abandon their pages once there is some indication that
// search engines adopted anti-spam measures against them", which is
// why a good core ages well while a black list goes stale.
//
// The step models exactly that: every existing spam host is abandoned
// (its outlinks die; lingering inbound stray links keep pointing at
// the dead domain), and a fresh generation of farms of the same sizes
// is stood up on previously-extinct host names, wired by a fresh
// random source. The good web — and therefore the good core — is
// untouched.
func EvolveSpam(w *World, cfg EvolveConfig) (*World, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := w.Graph.NumNodes()

	oldSpam := make(map[graph.NodeID]bool)
	for _, x := range w.SpamNodes() {
		oldSpam[x] = true
	}
	if len(oldSpam) == 0 {
		return nil, fmt.Errorf("webgen: world has no spam to evolve")
	}
	// Recycle pool: extinct hosts become the new spam generation's
	// domains (freshly registered names in reality; recycled IDs here).
	var pool []graph.NodeID
	for x, info := range w.Info {
		if info.Kind == KindIsolated {
			pool = append(pool, graph.NodeID(x))
		}
	}
	needed := 0
	for _, f := range w.Farms {
		needed += 1 + len(f.Boosters)
	}
	needed += len(w.ExpiredSpam)
	if len(pool) < needed {
		return nil, fmt.Errorf("webgen: recycle pool of %d extinct hosts cannot host %d new spam hosts", len(pool), needed)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// Popular good hosts (for camouflage and stray-link sources):
	// the mainstream head occupies the lowest IDs.
	var popular, ordinaryGood []graph.NodeID
	for x, info := range w.Info {
		if info.Kind == KindGood && info.Community == "mainstream" {
			if len(popular) < 100 {
				popular = append(popular, graph.NodeID(x))
			}
			ordinaryGood = append(ordinaryGood, graph.NodeID(x))
		}
	}
	if len(popular) == 0 {
		return nil, fmt.Errorf("webgen: no mainstream hosts to camouflage against")
	}

	// Rebuild edges: outlinks of abandoned spam die; everything else
	// survives, including stray links INTO dead spam domains.
	b := graph.NewBuilder(n)
	w.Graph.Edges(func(x, y graph.NodeID) bool {
		if !oldSpam[x] {
			b.AddEdge(x, y)
		}
		return true
	})

	out := &World{
		Names:            w.Names,
		Info:             append([]NodeInfo(nil), w.Info...),
		DirectoryMembers: w.DirectoryMembers,
		CommunityHubs:    w.CommunityHubs,
	}
	// Abandoned spam hosts: extinct again, or dead-with-inbound-links
	// (judged "nonexistent" by editors, like the paper's 5%).
	for x := range oldSpam {
		out.Info[x] = NodeInfo{Kind: KindIsolated}
	}

	take := func() graph.NodeID {
		x := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return x
	}
	// New farm generation: same size distribution, fresh wiring.
	for fi, old := range w.Farms {
		target := take()
		out.Info[target] = NodeInfo{Kind: KindSpamTarget, Community: fmt.Sprintf("farm-gen2-%d", fi)}
		farm := Farm{Target: target, Alliance: -1}
		for range old.Boosters {
			booster := take()
			out.Info[booster] = NodeInfo{Kind: KindBooster, Community: out.Info[target].Community}
			farm.Boosters = append(farm.Boosters, booster)
			b.AddEdge(booster, target)
		}
		if rng.Float64() < 0.5 && len(farm.Boosters) > 1 {
			for i, booster := range farm.Boosters {
				b.AddEdge(booster, farm.Boosters[(i+1)%len(farm.Boosters)])
			}
		}
		for l := 0; l < 2+rng.Intn(3); l++ {
			b.AddEdge(target, popular[rng.Intn(len(popular))])
		}
		// Fresh stray links from the good web.
		b.AddEdge(ordinaryGood[rng.Intn(len(ordinaryGood))], target)
		if rng.Float64() < 0.5 {
			for l := 0; l < 1+rng.Intn(4); l++ {
				b.AddEdge(ordinaryGood[rng.Intn(len(ordinaryGood))], target)
			}
		}
		out.Farms = append(out.Farms, farm)
	}
	// New expired-domain spam.
	for range w.ExpiredSpam {
		e := take()
		out.Info[e] = NodeInfo{Kind: KindExpiredSpam, Community: "expired-gen2"}
		out.ExpiredSpam = append(out.ExpiredSpam, e)
		for l := 0; l < 25+rng.Intn(60); l++ {
			b.AddEdge(ordinaryGood[rng.Intn(len(ordinaryGood))], e)
		}
		if len(out.Farms) > 0 {
			b.AddEdge(e, out.Farms[rng.Intn(len(out.Farms))].Target)
		}
	}
	// Abandoned spam that retains inbound links is a dead-but-linked
	// host (frontier-like); fully unlinked ones stay extinct.
	out.Graph = b.Build()
	for x := range oldSpam {
		if out.Graph.InDegree(x) > 0 {
			out.Info[x] = NodeInfo{Kind: KindFrontier}
		}
	}
	return out, nil
}
