package webgen

import (
	"fmt"
	"math/rand"

	"spammass/internal/graph"
)

// PageWorld is a page-level expansion of a host world — the raw-crawl
// view that Section 4.1's pipeline starts from, before all hyperlinks
// between pages of two hosts are collapsed into one host-level edge.
type PageWorld struct {
	Graph *graph.Graph
	// URLs[p] is the page's URL; its host part is the host's name.
	URLs []string
	// HostOf[p] is the host ID the page belongs to.
	HostOf []graph.NodeID
}

// PageConfig tunes the expansion.
type PageConfig struct {
	Seed int64
	// MaxPagesPerHost caps the per-host page count, drawn from a
	// power law on [1, MaxPagesPerHost].
	MaxPagesPerHost int
	// IntraLinkFactor multiplies the number of navigation links
	// generated inside each multi-page host.
	IntraLinkFactor float64
	// FanOut is how many parallel page-level links realize one
	// host-level edge on average (a site linking another usually does
	// so from several pages).
	FanOut float64
}

// DefaultPageConfig returns a modest expansion (≈3 pages per host).
func DefaultPageConfig() PageConfig {
	return PageConfig{Seed: 1, MaxPagesPerHost: 12, IntraLinkFactor: 1.5, FanOut: 1.6}
}

// ExpandPages turns a host world into a page-level graph: every host
// becomes a power-law-sized set of pages with internal navigation
// links, and every host-level edge becomes one or more page-level
// hyperlinks between random pages of the two hosts. Collapsing the
// result with graph.CollapseToHosts recovers exactly the host graph —
// the round trip Section 4.1 describes.
func ExpandPages(w *World, cfg PageConfig) (*PageWorld, error) {
	if cfg.MaxPagesPerHost < 1 {
		return nil, fmt.Errorf("webgen: MaxPagesPerHost must be ≥ 1")
	}
	if cfg.FanOut < 1 {
		return nil, fmt.Errorf("webgen: FanOut must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := w.Graph.NumNodes()

	pw := &PageWorld{}
	firstPage := make([]graph.NodeID, n+1)
	for h := 0; h < n; h++ {
		firstPage[h] = graph.NodeID(len(pw.URLs))
		pages := 1
		if cfg.MaxPagesPerHost > 1 {
			pages = plInt(rng, 1, cfg.MaxPagesPerHost, 2.0)
		}
		for p := 0; p < pages; p++ {
			url := "http://" + w.Names[h] + "/"
			if p > 0 {
				url = fmt.Sprintf("http://%s/page%d.html", w.Names[h], p)
			}
			pw.URLs = append(pw.URLs, url)
			pw.HostOf = append(pw.HostOf, graph.NodeID(h))
		}
	}
	firstPage[n] = graph.NodeID(len(pw.URLs))
	pagesOf := func(h graph.NodeID) (graph.NodeID, int) {
		return firstPage[h], int(firstPage[h+1] - firstPage[h])
	}

	b := graph.NewBuilder(len(pw.URLs))
	// Intra-host navigation: pages link to the home page and a few
	// siblings. These vanish at host level (they would be self-links).
	for h := 0; h < n; h++ {
		start, count := pagesOf(graph.NodeID(h))
		if count < 2 {
			continue
		}
		links := int(cfg.IntraLinkFactor * float64(count))
		for l := 0; l < links; l++ {
			from := start + graph.NodeID(rng.Intn(count))
			to := start + graph.NodeID(rng.Intn(count))
			b.AddEdge(from, to) // self-links silently dropped
		}
		for p := 1; p < count; p++ {
			b.AddEdge(start+graph.NodeID(p), start) // every page links home
		}
	}
	// Inter-host links: each host edge becomes ≥1 page links; the
	// first is always emitted so collapsing recovers the host graph
	// exactly.
	w.Graph.Edges(func(x, y graph.NodeID) bool {
		sx, cx := pagesOf(x)
		sy, cy := pagesOf(y)
		links := 1
		if cfg.FanOut > 1 {
			links = 1 + rng.Intn(int(2*cfg.FanOut-1)) // mean ≈ FanOut
		}
		for l := 0; l < links; l++ {
			from := sx + graph.NodeID(rng.Intn(cx))
			to := sy + graph.NodeID(rng.Intn(cy))
			b.AddEdge(from, to)
		}
		return true
	})
	pw.Graph = b.Build()
	return pw, nil
}
