package webgen

import "spammass/internal/graph"

// Link-target pickers. Blocks are popularity-ordered, so zipf sampling
// inside a block is preferential attachment toward its head.

func (g *gen) pickIn(b block) graph.NodeID {
	return b.at(zipfIdx(g.rng, b.Size, g.cfg.ZipfTheta))
}

func (g *gen) pickMainstream() graph.NodeID { return g.pickIn(g.mainstream) }

// pickTopMainstream picks among the universally known head of the
// mainstream web — the hosts everybody links to.
func (g *gen) pickTopMainstream() graph.NodeID {
	top := g.mainstream.Size / 100
	if top < 10 {
		top = 10
	}
	if top > g.mainstream.Size {
		top = g.mainstream.Size
	}
	return g.mainstream.at(zipfIdx(g.rng, top, g.cfg.ZipfTheta))
}

func (g *gen) pickUniform(b block) graph.NodeID {
	return b.at(g.rng.Intn(b.Size))
}

// pickFrontier first drains the shuffled frontier queue — every
// frontier host exists because somebody linked to it — then falls back
// to uniform picks.
func (g *gen) pickFrontier() graph.NodeID {
	if len(g.frontierQueue) > 0 {
		x := g.frontierQueue[len(g.frontierQueue)-1]
		g.frontierQueue = g.frontierQueue[:len(g.frontierQueue)-1]
		return x
	}
	return g.pickUniform(g.frontier)
}

func (g *gen) pickCountry() int {
	return weightedPick(g.rng, g.countryWebCum)
}

// outDegree draws a power-law out-degree with mean steered by
// cfg.MeanOutDeg (the base draw on [2,80] with exponent 2 has mean ≈7).
func (g *gen) outDegree() int {
	d := plInt(g.rng, 2, 80, 2.0)
	if g.cfg.MeanOutDeg != 7 {
		d = int(float64(d) * g.cfg.MeanOutDeg / 7)
	}
	if d < 1 {
		d = 1
	}
	return d
}

// linkMainstream wires the mainstream web: a share of every host's
// links discovers frontier hosts, the bulk attaches preferentially
// within the mainstream, and small shares endorse core-eligible hosts
// (directories, agencies, universities) and national webs.
func (g *gen) linkMainstream() {
	for i := 0; i < g.mainstream.Size; i++ {
		src := g.mainstream.at(i)
		d := g.outDegree()
		for l := 0; l < d; l++ {
			r := g.rng.Float64()
			var dst graph.NodeID
			switch {
			case r < 0.44:
				dst = g.pickFrontier()
			case r < 0.88:
				dst = g.pickMainstream()
			case r < 0.94:
				dst = g.pickIn(g.coreAll)
			default:
				ci := g.pickCountry()
				dst = g.pickIn(g.countryWeb[ci])
			}
			g.b.AddEdge(src, dst)
		}
	}
}

// linkCountryWebs wires each national web: mostly intra-country
// preferential links, endorsements of the country's universities, and
// cross-links to the mainstream. Every country is reachable from the
// mainstream (via linkMainstream's country share), so national hosts
// are NOT anomalous per se — the Polish anomaly comes purely from the
// core's coverage, not from isolation.
func (g *gen) linkCountryWebs() {
	for ci := range g.cfg.Countries {
		web := g.countryWeb[ci]
		edu := g.countryEdu[ci]
		for i := 0; i < web.Size; i++ {
			src := web.at(i)
			d := g.outDegree()
			for l := 0; l < d; l++ {
				r := g.rng.Float64()
				var dst graph.NodeID
				switch {
				case r < 0.22:
					dst = g.pickFrontier()
				case r < 0.72:
					dst = g.pickIn(web)
				case r < 0.80:
					dst = g.pickIn(edu)
				case r < 0.96:
					dst = g.pickMainstream()
				default:
					dst = g.pickIn(g.countryWeb[g.pickCountry()])
				}
				g.b.AddEdge(src, dst)
			}
		}
	}
}

// linkCore wires the good-core-eligible hosts. Directory hosts are
// link hubs by design: they list reputable mainstream, national, and
// educational hosts, spreading core-based PageRank broadly. Gov and
// edu hosts link into their own community and the mainstream.
func (g *gen) linkCore() {
	for i := 0; i < g.directory.Size; i++ {
		src := g.directory.at(i)
		d := plInt(g.rng, 30, 300, 1.7)
		for l := 0; l < d; l++ {
			r := g.rng.Float64()
			var dst graph.NodeID
			switch {
			case r < 0.55:
				dst = g.pickMainstream()
			case r < 0.75:
				dst = g.pickIn(g.countryWeb[g.pickCountry()])
			case r < 0.90:
				dst = g.pickIn(g.coreAll)
			default:
				dst = g.pickFrontier()
			}
			g.b.AddEdge(src, dst)
		}
	}
	usWeb := g.countryWeb[g.countryIndex("us")]
	for i := 0; i < g.gov.Size; i++ {
		src := g.gov.at(i)
		d := plInt(g.rng, 2, 40, 2.1)
		for l := 0; l < d; l++ {
			r := g.rng.Float64()
			var dst graph.NodeID
			switch {
			case r < 0.40:
				dst = g.pickMainstream()
			case r < 0.70:
				dst = g.pickIn(g.gov)
			case r < 0.90:
				dst = g.pickIn(usWeb)
			default:
				dst = g.pickFrontier()
			}
			g.b.AddEdge(src, dst)
		}
	}
	for ci := range g.cfg.Countries {
		edu := g.countryEdu[ci]
		web := g.countryWeb[ci]
		for i := 0; i < edu.Size; i++ {
			src := edu.at(i)
			d := plInt(g.rng, 2, 40, 2.1)
			for l := 0; l < d; l++ {
				r := g.rng.Float64()
				var dst graph.NodeID
				switch {
				case r < 0.45:
					dst = g.pickIn(web)
				case r < 0.65:
					dst = g.pickIn(edu)
				case r < 0.92:
					dst = g.pickMainstream()
				default:
					dst = g.pickFrontier()
				}
				g.b.AddEdge(src, dst)
			}
		}
	}
}

func (g *gen) countryIndex(code string) int {
	for ci, c := range g.cfg.Countries {
		if c.Code == code {
			return ci
		}
	}
	return 0
}

// linkAlibaba wires the large uncovered e-commerce community: shops
// link to the hub hosts and to a popular-member tier; hubs link back
// to shops; a few links point out to the mainstream, but (crucially)
// essentially none point in from the web the core can reach — which
// is exactly why its popular hosts show high relative mass until the
// hubs are added to the core (Section 4.4.2).
func (g *gen) linkAlibaba() {
	hubs := g.cfg.AlibabaHubs
	if hubs > g.alibaba.Size {
		hubs = g.alibaba.Size
	}
	popular := hubs + (g.alibaba.Size-hubs)/20 // second tier after the hubs
	for i := 0; i < g.alibaba.Size; i++ {
		src := g.alibaba.at(i)
		if i < hubs {
			// Hubs are portals: they list some shops but mostly link
			// out to suppliers and partners across the mainstream web,
			// so only a modest share of their (core-based or regular)
			// PageRank flows back into the community.
			for l := 0; l < 25; l++ {
				g.b.AddEdge(src, g.pickUniform(g.alibaba))
			}
			for l := 0; l < 100; l++ {
				g.b.AddEdge(src, g.pickMainstream())
			}
			continue
		}
		// Shops link to 2 hubs, 2 popular members, 1 random shop.
		for l := 0; l < 2; l++ {
			g.b.AddEdge(src, g.alibaba.at(g.rng.Intn(hubs)))
		}
		if popular > hubs {
			for l := 0; l < 2; l++ {
				g.b.AddEdge(src, g.alibaba.at(hubs+g.rng.Intn(popular-hubs)))
			}
		}
		g.b.AddEdge(src, g.pickUniform(g.alibaba))
		if g.rng.Float64() < 0.1 {
			g.b.AddEdge(src, g.pickMainstream())
		}
	}
}

// linkBrBlogs wires the isolated blog community: blogroll links,
// preferential within the community, with no inbound links from the
// core-covered web — a large community "relatively isolated from Ṽ⁺".
func (g *gen) linkBrBlogs() {
	for i := 0; i < g.brblogs.Size; i++ {
		src := g.brblogs.at(i)
		d := 3 + g.rng.Intn(6)
		for l := 0; l < d; l++ {
			g.b.AddEdge(src, g.pickIn(g.brblogs))
		}
		if g.rng.Float64() < 0.15 {
			g.b.AddEdge(src, g.pickFrontier())
		}
	}
}

// linkCliques wires the isolated good cliques of Section 4.4: online
// communities and web-design rings where clients link to the company
// site and it links back, with few or no external links in either
// direction. Roughly a third of the cliques get one weak inbound link
// from the mainstream.
func (g *gen) linkCliques() {
	for _, q := range g.cliques {
		company := q.at(0)
		for i := 1; i < q.Size; i++ {
			member := q.at(i)
			g.b.AddEdge(member, company)
			g.b.AddEdge(company, member)
			if g.rng.Float64() < 0.3 {
				g.b.AddEdge(member, q.at(1+g.rng.Intn(q.Size-1)))
			}
		}
		// Weak but present connection to the covered web: a client or
		// two gets mentioned on ordinary sites.
		for l := 0; l < 2+g.rng.Intn(3); l++ {
			g.b.AddEdge(g.pickMainstream(), company)
		}
		if g.rng.Float64() < 0.5 {
			g.b.AddEdge(company, g.pickMainstream())
		}
	}
}

// linkSubcultures wires mid-size interest communities: heavy
// preferential intra-linking, a modest outflow to the mainstream, and
// only a couple of inbound entry links from the covered web. Their
// popular hosts earn solid PageRank from their own community, of which
// the core-based PageRank sees only the thin inbound trickle — good
// hosts with moderate positive relative mass.
func (g *gen) linkSubcultures() {
	for _, sc := range g.subcultures {
		for i := 0; i < sc.Size; i++ {
			src := sc.at(i)
			d := plInt(g.rng, 2, 30, 2.1)
			for l := 0; l < d; l++ {
				r := g.rng.Float64()
				var dst graph.NodeID
				switch {
				case r < 0.78:
					dst = g.pickIn(sc)
				case r < 0.90:
					dst = g.pickMainstream()
				default:
					dst = g.pickFrontier()
				}
				g.b.AddEdge(src, dst)
			}
		}
		// A couple of entry links from the mainstream: the community
		// is reachable, merely under-endorsed.
		entries := 2 + sc.Size/25 + g.rng.Intn(3)
		for l := 0; l < entries; l++ {
			g.b.AddEdge(g.pickMainstream(), sc.at(zipfIdx(g.rng, sc.Size, g.cfg.ZipfTheta)))
		}
	}
}

// linkFarms wires the spam farms of Section 2.3: every boosting node
// links to its target; some targets recycle rank back to boosters;
// targets camouflage with a few outlinks to reputable hosts; a
// fraction of farms harvest honey-pot stray links from good hosts; and
// a fraction of farms ally, their targets linking in a ring.
func (g *gen) linkFarms() {
	farms := g.world.Farms
	for fi := range farms {
		f := &farms[fi]
		for _, booster := range f.Boosters {
			g.b.AddEdge(booster, f.Target)
		}
		style := g.rng.Float64()
		switch {
		case style < 0.3:
			// Machine-generated template farm: every boosting page is
			// stamped from the same template — a navigation block of
			// links to sibling boosters plus the target — so every
			// booster has exactly the same out-degree, the tell-tale
			// degree spike that Fetterly et al.'s detector keys on.
			// All links stay inside the farm (leaking rank to outside
			// hosts would defeat the boosting).
			t := 15 + g.rng.Intn(11)
			if t > len(f.Boosters) {
				t = len(f.Boosters)
			}
			for i, booster := range f.Boosters {
				for j := 1; j < t; j++ {
					g.b.AddEdge(booster, f.Boosters[(i+j)%len(f.Boosters)])
				}
			}
		case style < 0.7:
			// Ring-interlinked boosters (the paper's farm model has
			// boosting nodes "connected so that they would influence
			// the PageRank of the target"); the rest are pure stars.
			for i, booster := range f.Boosters {
				g.b.AddEdge(booster, f.Boosters[(i+1)%len(f.Boosters)])
			}
		}
		if g.rng.Float64() < 0.5 {
			// Recycle target rank into a few boosters and back.
			for l := 0; l < 3 && l < len(f.Boosters); l++ {
				g.b.AddEdge(f.Target, f.Boosters[l])
			}
		}
		// Camouflage outlinks point at universally popular hosts (the
		// nytimes.com pattern): cheap to add and they do not implicate
		// ordinary hosts in the farm's spam mass.
		for l := 0; l < 2+g.rng.Intn(3); l++ {
			g.b.AddEdge(f.Target, g.pickTopMainstream())
		}
		// Every farm leaks at least one stray link (a guestbook
		// comment somewhere), so no real target sits at exactly m~ = 1.
		g.b.AddEdge(g.pickUniform(g.mainstream), f.Target)
		if g.rng.Float64() < g.cfg.HoneypotFrac {
			// Stray links (Section 2.3): spammed guestbook comments
			// come from unremarkable hosts and barely matter; a
			// successful honey pot attracts links from genuinely
			// popular hosts and dilutes the target's relative mass
			// well below 1.
			f.Honeypot = plInt(g.rng, 1, 6, 1.8)
			for l := 0; l < f.Honeypot; l++ {
				if g.rng.Float64() < 0.7 {
					g.b.AddEdge(g.pickUniform(g.mainstream), f.Target)
				} else {
					g.b.AddEdge(g.pickMainstream(), f.Target)
				}
			}
		}
	}
	// Alliances: rings of 2-5 consecutive farms.
	alliance := 0
	for fi := 0; fi < len(farms); {
		if g.rng.Float64() >= g.cfg.AllianceFrac {
			fi++
			continue
		}
		size := 2 + g.rng.Intn(4)
		if fi+size > len(farms) {
			size = len(farms) - fi
		}
		if size < 2 {
			break
		}
		for k := 0; k < size; k++ {
			farms[fi+k].Alliance = alliance
			g.b.AddEdge(farms[fi+k].Target, farms[fi+(k+1)%size].Target)
		}
		alliance++
		fi += size
	}
}

// linkExpired wires expired-domain spam: hosts whose PageRank flows in
// from lingering links on reputable hosts (the domain used to be
// reputable), making them invisible to good-core mass estimation.
func (g *gen) linkExpired() {
	for _, e := range g.world.ExpiredSpam {
		inlinks := plInt(g.rng, 25, 150, 2.0)
		for l := 0; l < inlinks; l++ {
			g.b.AddEdge(g.pickMainstream(), e)
		}
		// The new owner monetizes: links out to farm targets.
		if len(g.world.Farms) > 0 {
			for l := 0; l < 1+g.rng.Intn(2); l++ {
				g.b.AddEdge(e, g.world.Farms[g.rng.Intn(len(g.world.Farms))].Target)
			}
		}
	}
}
