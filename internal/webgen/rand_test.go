package webgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfIdxBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1000)
		for i := 0; i < 100; i++ {
			idx := zipfIdx(rng, n, 0.8)
			if idx < 0 || idx >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if zipfIdx(rand.New(rand.NewSource(1)), 1, 0.8) != 0 {
		t.Error("n=1 must return 0")
	}
}

// TestZipfIdxPreferential: rank 0 must be drawn far more often than a
// deep-tail rank, roughly by the configured power law.
func TestZipfIdxPreferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, draws = 1000, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[zipfIdx(rng, n, 0.8)]++
	}
	if counts[0] < 20*counts[500] {
		t.Errorf("head rank drawn %d times vs rank 500 %d times; want strong preference", counts[0], counts[500])
	}
	// The expected ratio count[0]/count[99] is about 100^0.8 ≈ 40.
	ratio := float64(counts[0]) / float64(counts[99]+1)
	if ratio < 10 || ratio > 160 {
		t.Errorf("head/rank-99 ratio %.1f far from the zipf prediction ≈ 40", ratio)
	}
}

func TestPlIntBoundsAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lo, hi = 2, 80
	sum := 0
	for i := 0; i < 100000; i++ {
		d := plInt(rng, lo, hi, 2.0)
		if d < lo || d > hi {
			t.Fatalf("plInt returned %d outside [%d,%d]", d, lo, hi)
		}
		sum += d
	}
	mean := float64(sum) / 100000
	// For p(d) ∝ d^-2 on [2,81], the mean is ≈ 2·ln(40.5) ≈ 7.4.
	if mean < 6 || mean > 9 {
		t.Errorf("plInt mean %.2f, want ≈ 7.4", mean)
	}
	if plInt(rng, 5, 5, 2.0) != 5 {
		t.Error("degenerate range must return lo")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cum := cumSum([]float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[weightedPick(rng, cum)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight-3/weight-1 ratio %.2f, want ≈ 3", ratio)
	}
}
