package webgen

import (
	"fmt"
	"math/rand"

	"spammass/internal/graph"
)

// block is a contiguous node ID range [Start, Start+Size).
type block struct {
	Start graph.NodeID
	Size  int
}

func (b block) contains(x graph.NodeID) bool {
	return x >= b.Start && int(x-b.Start) < b.Size
}

// pick returns the block node at popularity rank i (0 = most popular).
func (b block) at(i int) graph.NodeID { return b.Start + graph.NodeID(i) }

type gen struct {
	cfg Config
	rng *rand.Rand
	b   *graph.Builder

	info  []NodeInfo
	names []string

	mainstream  block
	countryWeb  []block // parallel to cfg.Countries
	directory   block
	gov         block
	countryEdu  []block // parallel to cfg.Countries
	coreAll     block   // directory+gov+edu as one popularity-ordered block
	alibaba     block
	brblogs     block
	cliques     []block
	subcultures []block
	frontier    block
	isolated    block

	countryWebCum []float64 // cumulative WebShare for weighted country pick
	frontierQueue []graph.NodeID

	world *World
}

// Generate builds a synthetic host-level web graph and its ground
// truth from the configuration.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if err := g.layout(); err != nil {
		return nil, err
	}
	// Every host draws ~MeanOutDeg links (directories and farm boosters
	// draw more, isolated hosts none); reserving slightly above the mean
	// avoids the append-doubling overshoot at web scale.
	g.b.Reserve(int(float64(cfg.Hosts) * (cfg.MeanOutDeg + 2)))
	g.linkMainstream()
	g.linkCountryWebs()
	g.linkCore()
	g.linkAlibaba()
	g.linkBrBlogs()
	g.linkCliques()
	g.linkSubcultures()
	g.linkFarms()
	g.linkExpired()
	g.world.Graph = g.b.Build()
	g.world.Names = g.names
	g.world.Info = g.info
	return g.world, nil
}

// layout assigns contiguous ID blocks and records names and ground
// truth for every host. Block-internal order is popularity order:
// index 0 is the block's most popular host under zipf attachment.
func (g *gen) layout() error {
	cfg := g.cfg
	n := cfg.Hosts
	nIsolated := int(cfg.FracIsolated * float64(n))
	nFrontier := int(cfg.FracFrontier * float64(n))
	nSpam := int(cfg.FracSpam * float64(n))

	nCore := int(cfg.CoreEligibleFrac * float64(n))
	if nCore < 3 {
		nCore = 3
	}
	nDir := int(cfg.DirectoryShare * float64(nCore))
	nGov := int(cfg.GovShare * float64(nCore))
	nEdu := nCore - nDir - nGov
	if nDir < 1 || nGov < 1 || nEdu < len(cfg.Countries) {
		return fmt.Errorf("webgen: core too small to split (%d dir / %d gov / %d edu for %d countries)", nDir, nGov, nEdu, len(cfg.Countries))
	}

	nCountryWeb := int(cfg.CountryWebFrac * float64(n))
	nCliques := 0
	cliqueSizes := make([]int, cfg.CliqueCount)
	for i := range cliqueSizes {
		cliqueSizes[i] = cfg.CliqueMin + g.rng.Intn(cfg.CliqueMax-cfg.CliqueMin+1)
		nCliques += cliqueSizes[i]
	}
	nSub := 0
	subSizes := make([]int, cfg.Subcultures)
	for i := range subSizes {
		subSizes[i] = plInt(g.rng, cfg.SubcultureMin, cfg.SubcultureMax, 2.0)
		nSub += subSizes[i]
	}

	special := cfg.AlibabaHosts + cfg.BrBlogHosts + nCliques + nSub
	nMainstream := n - nIsolated - nFrontier - nSpam - nCore - nCountryWeb - special
	if nMainstream < n/20 {
		return fmt.Errorf("webgen: configuration leaves only %d mainstream hosts of %d", nMainstream, n)
	}

	g.info = make([]NodeInfo, 0, n)
	g.names = make([]string, 0, n)
	g.world = &World{CommunityHubs: map[string][]graph.NodeID{}}
	next := graph.NodeID(0)
	claim := func(size int) block {
		b := block{Start: next, Size: size}
		next += graph.NodeID(size)
		return b
	}
	add := func(count int, nameFn func(i int) string, infoFn func(i int) NodeInfo) {
		for i := 0; i < count; i++ {
			g.names = append(g.names, nameFn(i))
			g.info = append(g.info, infoFn(i))
		}
	}

	// 1. Mainstream web.
	g.mainstream = claim(nMainstream)
	add(nMainstream,
		func(i int) string { return fmt.Sprintf("www.site%d.com", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindGood, Community: "mainstream"} })

	// 2. National webs, split by WebShare. The Polish web is anomalous:
	// big WebShare, negligible EduShare (so the core barely covers it).
	var webWeights []float64
	totalWebShare := 0.0
	for _, c := range cfg.Countries {
		totalWebShare += c.WebShare
	}
	g.countryWeb = make([]block, len(cfg.Countries))
	for ci, c := range cfg.Countries {
		size := int(float64(nCountryWeb) * c.WebShare / totalWebShare)
		if size < 1 {
			size = 1
		}
		g.countryWeb[ci] = claim(size)
		cc := c.Code
		anomalous := cc == "pl" // under-covered country (Section 4.4.1)
		add(size,
			func(i int) string { return fmt.Sprintf("www.strona%d.%s", i, cc) },
			func(i int) NodeInfo {
				return NodeInfo{Kind: KindGood, Community: cc, Country: cc, Anomalous: anomalous}
			})
		webWeights = append(webWeights, c.WebShare)
	}
	g.countryWebCum = cumSum(webWeights)

	// 3. Good-core-eligible hosts, one popularity-ordered superblock:
	// directory first (most inlinked), then gov, then per-country edu.
	coreStart := next
	g.directory = claim(nDir)
	add(nDir,
		func(i int) string { return fmt.Sprintf("www.dirsite%d.org", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindDirectory, Community: "mainstream"} })
	g.gov = claim(nGov)
	add(nGov,
		func(i int) string { return fmt.Sprintf("agency%d.gov", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindGov, Community: "us", Country: "us"} })

	totalEduShare := 0.0
	for _, c := range cfg.Countries {
		totalEduShare += c.EduShare
	}
	// Pre-compute edu sizes: at least one host per country, remainder
	// to the largest country, so the total is exactly nEdu.
	eduSizes := make([]int, len(cfg.Countries))
	assigned := 0
	for ci, c := range cfg.Countries {
		eduSizes[ci] = int(float64(nEdu) * c.EduShare / totalEduShare)
		if eduSizes[ci] < 1 {
			eduSizes[ci] = 1
		}
		assigned += eduSizes[ci]
	}
	largest := 0
	for ci := range eduSizes {
		if eduSizes[ci] > eduSizes[largest] {
			largest = ci
		}
	}
	eduSizes[largest] += nEdu - assigned
	if eduSizes[largest] < 1 {
		return fmt.Errorf("webgen: edu population %d cannot cover %d countries", nEdu, len(cfg.Countries))
	}
	g.countryEdu = make([]block, len(cfg.Countries))
	for ci, c := range cfg.Countries {
		size := eduSizes[ci]
		g.countryEdu[ci] = claim(size)
		cc := c.Code
		suffix := "edu"
		if cc != "us" {
			suffix = "edu." + cc
		}
		anomalous := cc == "pl"
		add(size,
			func(i int) string { return fmt.Sprintf("uni%d.%s", i, suffix) },
			func(i int) NodeInfo {
				return NodeInfo{Kind: KindEdu, Community: cc, Country: cc, Anomalous: anomalous}
			})
	}
	g.coreAll = block{Start: coreStart, Size: int(next - coreStart)}

	for _, x := range blockIDs(g.directory) {
		g.world.DirectoryMembers = append(g.world.DirectoryMembers, x)
	}

	// 4. Special communities.
	g.alibaba = claim(cfg.AlibabaHosts)
	add(cfg.AlibabaHosts,
		func(i int) string {
			if i < cfg.AlibabaHubs {
				return fmt.Sprintf("hub%d.alibaba.com.cn", i)
			}
			return fmt.Sprintf("shop%d.alibaba.com.cn", i)
		},
		func(i int) NodeInfo {
			return NodeInfo{Kind: KindGood, Community: "alibaba", Country: "cn", Anomalous: true}
		})
	for i := 0; i < cfg.AlibabaHubs && i < cfg.AlibabaHosts; i++ {
		g.world.CommunityHubs["alibaba"] = append(g.world.CommunityHubs["alibaba"], g.alibaba.at(i))
	}

	g.brblogs = claim(cfg.BrBlogHosts)
	add(cfg.BrBlogHosts,
		func(i int) string { return fmt.Sprintf("blog%d.blogger.com.br", i) },
		func(i int) NodeInfo {
			return NodeInfo{Kind: KindGood, Community: "brblogs", Country: "br", Anomalous: true}
		})

	g.cliques = make([]block, len(cliqueSizes))
	for qi, size := range cliqueSizes {
		g.cliques[qi] = claim(size)
		name := fmt.Sprintf("clique-%d", qi)
		add(size,
			func(i int) string { return fmt.Sprintf("member%d.%s.net", i, name) },
			func(i int) NodeInfo {
				return NodeInfo{Kind: KindGood, Community: name}
			})
	}

	g.subcultures = make([]block, len(subSizes))
	for si, size := range subSizes {
		g.subcultures[si] = claim(size)
		name := fmt.Sprintf("scene-%d", si)
		add(size,
			func(i int) string { return fmt.Sprintf("fan%d.%s.org", i, name) },
			func(i int) NodeInfo {
				return NodeInfo{Kind: KindGood, Community: name}
			})
	}

	// 5. Spam: farms (target + boosters), then expired-domain spam.
	nExpired := cfg.ExpiredDomains
	boosterBudget := nSpam - nExpired - cfg.Farms
	if boosterBudget < cfg.Farms*3 {
		return fmt.Errorf("webgen: spam budget %d too small for %d farms", nSpam, cfg.Farms)
	}
	sizes := make([]int, cfg.Farms)
	sum := 0
	for i := range sizes {
		sizes[i] = plInt(g.rng, cfg.BoosterMin, cfg.BoosterMax, cfg.BoosterExp)
		sum += sizes[i]
	}
	// Rescale draws to the budget, keeping at least 3 boosters each.
	for i := range sizes {
		sizes[i] = int(float64(sizes[i]) * float64(boosterBudget) / float64(sum))
		if sizes[i] < 3 {
			sizes[i] = 3
		}
	}
	for fi, boosters := range sizes {
		target := next
		claim(1 + boosters)
		farmName := fmt.Sprintf("farm-%d", fi)
		add(1,
			func(i int) string { return fmt.Sprintf("best-deals-%d.biz", fi) },
			func(i int) NodeInfo { return NodeInfo{Kind: KindSpamTarget, Community: farmName} })
		add(boosters,
			func(i int) string { return fmt.Sprintf("booster%d-%d.info", fi, i) },
			func(i int) NodeInfo { return NodeInfo{Kind: KindBooster, Community: farmName} })
		farm := Farm{Target: target, Alliance: -1}
		for i := 0; i < boosters; i++ {
			farm.Boosters = append(farm.Boosters, target+1+graph.NodeID(i))
		}
		g.world.Farms = append(g.world.Farms, farm)
	}
	expiredStart := next
	claim(nExpired)
	add(nExpired,
		func(i int) string { return fmt.Sprintf("once-reputable%d.com", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindExpiredSpam, Community: "expired"} })
	for i := 0; i < nExpired; i++ {
		g.world.ExpiredSpam = append(g.world.ExpiredSpam, expiredStart+graph.NodeID(i))
	}

	// 6. Frontier (uncrawled, inlinks only) and isolated hosts. The
	// isolated block absorbs the remainder, so minor drift from the
	// booster-budget rounding lands there.
	if int(next)+nFrontier > n {
		return fmt.Errorf("webgen: layout overflow: %d hosts claimed plus %d frontier exceeds %d", next, nFrontier, n)
	}
	g.frontier = claim(nFrontier)
	add(nFrontier,
		func(i int) string { return fmt.Sprintf("frontier%d.net", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindFrontier} })
	isolatedCount := n - int(next)
	g.isolated = block{Start: next, Size: isolatedCount}
	next += graph.NodeID(isolatedCount)
	add(isolatedCount,
		func(i int) string { return fmt.Sprintf("extinct%d.org", i) },
		func(i int) NodeInfo { return NodeInfo{Kind: KindIsolated} })

	g.b = graph.NewBuilder(n)

	// Frontier in-link queue: every frontier host exists because some
	// crawled host linked to it, so each must receive at least one
	// inlink before any receives a second.
	g.frontierQueue = blockIDs(g.frontier)
	g.rng.Shuffle(len(g.frontierQueue), func(i, j int) {
		g.frontierQueue[i], g.frontierQueue[j] = g.frontierQueue[j], g.frontierQueue[i]
	})
	return nil
}

func blockIDs(b block) []graph.NodeID {
	out := make([]graph.NodeID, b.Size)
	for i := range out {
		out[i] = b.at(i)
	}
	return out
}
