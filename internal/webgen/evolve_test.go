package webgen

import (
	"testing"

	"spammass/internal/graph"
)

func TestEvolveSpamPreservesGoodWeb(t *testing.T) {
	w, err := Generate(DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := EvolveSpam(w, EvolveConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Graph.Validate(); err != nil {
		t.Fatalf("evolved graph invalid: %v", err)
	}
	if w2.Graph.NumNodes() != w.Graph.NumNodes() {
		t.Fatal("evolution changed the host population size")
	}
	// Every edge between two non-spam hosts survives identically.
	preserved := true
	w.Graph.Edges(func(x, y graph.NodeID) bool {
		if !w.Info[x].Kind.Spam() && !w.Info[y].Kind.Spam() {
			if !w2.Graph.HasEdge(x, y) {
				preserved = false
				return false
			}
		}
		return true
	})
	if !preserved {
		t.Fatal("a good-web edge was lost during spam evolution")
	}
	// The good core is untouched.
	for _, x := range w.DirectoryMembers {
		if w2.Info[x].Kind != w.Info[x].Kind {
			t.Fatalf("directory member %d changed kind", x)
		}
	}
}

func TestEvolveSpamChurnsSpam(t *testing.T) {
	w, err := Generate(DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := EvolveSpam(w, EvolveConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// No old spam host is spam in the new generation.
	for _, x := range w.SpamNodes() {
		if w2.Info[x].Kind.Spam() {
			t.Fatalf("old spam host %d still spam after evolution", x)
		}
		if w2.Graph.OutDegree(x) != 0 {
			t.Fatalf("abandoned spam host %d still has outlinks", x)
		}
	}
	// The new generation is the same order of magnitude.
	oldSpam, newSpam := len(w.SpamNodes()), len(w2.SpamNodes())
	if newSpam < oldSpam*9/10 || newSpam > oldSpam*11/10 {
		t.Errorf("spam population changed %d -> %d; churn should preserve scale", oldSpam, newSpam)
	}
	// New farms are wired: boosters link to their target.
	if len(w2.Farms) != len(w.Farms) {
		t.Fatalf("%d farms after evolution, want %d", len(w2.Farms), len(w.Farms))
	}
	for fi, f := range w2.Farms {
		if len(f.Boosters) == 0 {
			t.Fatalf("farm %d has no boosters", fi)
		}
		for _, booster := range f.Boosters {
			if !w2.Graph.HasEdge(booster, f.Target) {
				t.Fatalf("farm %d booster %d not linked to target", fi, booster)
			}
		}
	}
	// Old targets that kept stray inbound links are dead-but-linked.
	deadLinked := 0
	for _, f := range w.Farms {
		if f.Honeypot > 0 && w2.Info[f.Target].Kind == KindFrontier {
			deadLinked++
		}
	}
	if deadLinked == 0 {
		t.Error("no abandoned honey-pot target retained its stray links")
	}
}

func TestEvolveSpamErrors(t *testing.T) {
	w, err := Generate(DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	noSpam := &World{Graph: w.Graph, Info: make([]NodeInfo, w.Graph.NumNodes()), Names: w.Names}
	if _, err := EvolveSpam(noSpam, EvolveConfig{}); err == nil {
		t.Error("world without spam accepted")
	}
}
