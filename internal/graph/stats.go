package graph

// Stats summarizes the structural statistics the paper reports for the
// Yahoo! host graph in Section 4.1: node and edge counts and the
// prevalence of hosts without inlinks, without outlinks, and isolated.
type Stats struct {
	Nodes int
	Edges int64

	NoInlinks  int // hosts nobody links to
	NoOutlinks int // hosts that link nowhere (dangling)
	Isolated   int // hosts with neither inlinks nor outlinks

	MaxInDegree  int
	MaxOutDegree int
}

// FracNoInlinks returns the fraction of nodes without inlinks
// (35% for the Yahoo! 2004 host graph).
func (s Stats) FracNoInlinks() float64 { return frac(s.NoInlinks, s.Nodes) }

// FracNoOutlinks returns the fraction of nodes without outlinks
// (66.4% for the Yahoo! 2004 host graph).
func (s Stats) FracNoOutlinks() float64 { return frac(s.NoOutlinks, s.Nodes) }

// FracIsolated returns the fraction of completely isolated nodes
// (25.8% for the Yahoo! 2004 host graph).
func (s Stats) FracIsolated() float64 { return frac(s.Isolated, s.Nodes) }

func frac(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for x := 0; x < g.NumNodes(); x++ {
		in, out := g.InDegree(NodeID(x)), g.OutDegree(NodeID(x))
		if in == 0 {
			s.NoInlinks++
		}
		if out == 0 {
			s.NoOutlinks++
		}
		if in == 0 && out == 0 {
			s.Isolated++
		}
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
	}
	return s
}

// DegreeHistogram returns the number of nodes having each in-degree
// (if in is true) or out-degree. Index d of the result is the count of
// nodes with degree d. Degree-distribution outliers are the spam signal
// used by the Fetterly et al. baseline.
func DegreeHistogram(g *Graph, in bool) []int64 {
	maxDeg := 0
	deg := func(x NodeID) int {
		if in {
			return g.InDegree(x)
		}
		return g.OutDegree(x)
	}
	for x := 0; x < g.NumNodes(); x++ {
		if d := deg(NodeID(x)); d > maxDeg {
			maxDeg = d
		}
	}
	h := make([]int64, maxDeg+1)
	for x := 0; x < g.NumNodes(); x++ {
		h[deg(NodeID(x))]++
	}
	return h
}
