package graph

import (
	"fmt"
	"testing"
)

func TestShardOfDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("host%03d.example", i)
			s := ShardOf(name, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", name, n, s)
			}
			if again := ShardOf(name, n); again != s {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", name, n, s, again)
			}
		}
	}
	if ShardOf("anything", 1) != 0 || ShardOf("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

// TestShardOfSpreads checks the hash actually distributes: over 2000
// generated host names and 4 shards, no shard may be empty or hold
// more than half the names. (Loose bounds; the point is catching a
// broken hash, not proving uniformity.)
func TestShardOfSpreads(t *testing.T) {
	const hosts, shards = 2000, 4
	counts := make([]int, shards)
	for i := 0; i < hosts; i++ {
		counts[ShardOf(fmt.Sprintf("host%04d.example", i), shards)]++
	}
	for s, c := range counts {
		if c == 0 || c > hosts/2 {
			t.Fatalf("shard %d holds %d of %d names: hash does not spread", s, c, hosts)
		}
	}
}

func TestPartitionHosts(t *testing.T) {
	const n = 40
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%02d.example", i)
	}
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		edges = append(edges, [2]NodeID{NodeID(i), NodeID((i + 1) % n)})
		edges = append(edges, [2]NodeID{NodeID(i), NodeID((i + 7) % n)})
	}
	h, err := NewHostGraph(FromEdges(n, edges), names)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	p, err := PartitionHosts(h, shards)
	if err != nil {
		t.Fatal(err)
	}

	// Every host lands in exactly one part, at the recorded local ID,
	// owned by ShardOf.
	total := 0
	for s, part := range p.Parts {
		total += part.Graph.NumNodes()
		for local, name := range part.Names {
			if ShardOf(name, shards) != s {
				t.Fatalf("host %s in shard %d, ShardOf says %d", name, s, ShardOf(name, shards))
			}
			global, ok := h.NodeByName(name)
			if !ok {
				t.Fatalf("shard %d holds unknown host %s", s, name)
			}
			if int(p.Shard[global]) != s || p.Local[global] != NodeID(local) {
				t.Fatalf("host %s: Shard/Local say (%d,%d), found at (%d,%d)",
					name, p.Shard[global], p.Local[global], s, local)
			}
		}
	}
	if total != n {
		t.Fatalf("parts hold %d hosts, source has %d", total, n)
	}

	// Intra-shard edges survive in local coordinates; cross-shard
	// edges are dropped and counted.
	kept := int64(0)
	h.Graph.Edges(func(x, y NodeID) bool {
		if p.Shard[x] != p.Shard[y] {
			return true
		}
		kept++
		part := p.Parts[p.Shard[x]]
		found := false
		for _, z := range part.Graph.OutNeighbors(p.Local[x]) {
			if z == p.Local[y] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("intra-shard edge %s -> %s missing from shard %d", h.Names[x], h.Names[y], p.Shard[x])
		}
		return true
	})
	partEdges := int64(0)
	for _, part := range p.Parts {
		partEdges += part.Graph.NumEdges()
	}
	if partEdges != kept {
		t.Fatalf("parts hold %d edges, expected %d intra-shard edges", partEdges, kept)
	}
	if kept+p.CrossEdges != h.Graph.NumEdges() {
		t.Fatalf("kept %d + cross %d != source %d edges", kept, p.CrossEdges, h.Graph.NumEdges())
	}
	if p.CrossEdges == 0 {
		t.Fatal("test graph produced no cross-shard edges; bounds too weak to mean anything")
	}
}

func TestPartitionHostsSingleShardIsIdentity(t *testing.T) {
	const n = 10
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("h%d.example", i)
	}
	h, err := NewHostGraph(FromEdges(n, [][2]NodeID{{0, 1}, {1, 2}, {4, 9}}), names)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionHosts(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossEdges != 0 {
		t.Fatalf("single shard dropped %d edges", p.CrossEdges)
	}
	if !p.Parts[0].Graph.Equal(h.Graph) {
		t.Fatal("single-shard partition must reproduce the source graph")
	}
}
