package graph

import "testing"

func TestHostOf(t *testing.T) {
	cases := []struct {
		url, want string
	}{
		{"http://www.nytimes.com/2004/index.html", "www.nytimes.com"},
		{"https://cs.stanford.edu/", "cs.stanford.edu"},
		{"www-cs.stanford.edu/people", "www-cs.stanford.edu"},
		{"http://EXAMPLE.com", "example.com"},
		{"http://example.com:8080/a", "example.com"},
		{"http://user@example.com/a", "example.com"},
		{"http://example.com.", "example.com"},
		{"ftp://mirror.example.org/pub", "mirror.example.org"},
		{"host.only", "host.only"},
	}
	for _, c := range cases {
		if got := HostOf(c.url); got != c.want {
			t.Errorf("HostOf(%q) = %q, want %q", c.url, got, c.want)
		}
	}
}

func TestCollapseToHosts(t *testing.T) {
	// Four pages on three hosts. Page graph:
	//   a/1 → a/2 (intra-host, must vanish)
	//   a/1 → b/1, a/2 → b/1 (parallel at host level, must collapse)
	//   b/1 → c/1
	pages := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	urls := []string{
		"http://a.example/1",
		"http://a.example/2",
		"http://b.example/1",
		"http://c.example/1",
	}
	h, err := CollapseToHosts(pages, urls)
	if err != nil {
		t.Fatalf("CollapseToHosts: %v", err)
	}
	if h.Graph.NumNodes() != 3 {
		t.Fatalf("host graph has %d nodes, want 3", h.Graph.NumNodes())
	}
	if h.Graph.NumEdges() != 2 {
		t.Fatalf("host graph has %d edges, want 2 (intra-host dropped, parallels collapsed)", h.Graph.NumEdges())
	}
	a, _ := h.NodeByName("a.example")
	b, _ := h.NodeByName("b.example")
	c, _ := h.NodeByName("c.example")
	if !h.Graph.HasEdge(a, b) || !h.Graph.HasEdge(b, c) {
		t.Errorf("host edges missing: a→b=%v b→c=%v", h.Graph.HasEdge(a, b), h.Graph.HasEdge(b, c))
	}
	if _, ok := h.NodeByName("nosuch.example"); ok {
		t.Error("NodeByName found a nonexistent host")
	}
}

func TestCollapseToHostsErrors(t *testing.T) {
	pages := FromEdges(2, [][2]NodeID{{0, 1}})
	if _, err := CollapseToHosts(pages, []string{"http://a/1"}); err == nil {
		t.Error("mismatched URL count accepted")
	}
	if _, err := CollapseToHosts(pages, []string{"http://a/1", "http:///nohost"}); err == nil {
		t.Error("empty host accepted")
	}
}

func TestHostIndex(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	h, err := NewHostGraph(g, []string{"a.example", "b.example", "c.example"})
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	idx := h.HostIndex()
	if len(idx) != 3 {
		t.Fatalf("HostIndex has %d entries, want 3", len(idx))
	}
	for i, name := range h.Names {
		if idx[name] != NodeID(i) {
			t.Errorf("HostIndex[%q] = %d, want %d", name, idx[name], i)
		}
	}
	// The returned map is a copy: mutating it must not corrupt the
	// graph's own lookup state or a previously returned index.
	idx2 := h.HostIndex()
	idx["b.example"] = 99
	delete(idx, "a.example")
	if id, ok := h.NodeByName("b.example"); !ok || id != 1 {
		t.Errorf("NodeByName(b.example) = %d,%v after mutating HostIndex copy, want 1,true", id, ok)
	}
	if id, ok := h.NodeByName("a.example"); !ok || id != 0 {
		t.Errorf("NodeByName(a.example) = %d,%v after deleting from HostIndex copy, want 0,true", id, ok)
	}
	if idx2["b.example"] != 1 {
		t.Errorf("second HostIndex copy sees %d for b.example, want 1", idx2["b.example"])
	}
}

func TestNewHostGraph(t *testing.T) {
	g := FromEdges(2, [][2]NodeID{{0, 1}})
	if _, err := NewHostGraph(g, []string{"a"}); err == nil {
		t.Error("mismatched name count accepted")
	}
	if _, err := NewHostGraph(g, []string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
	h, err := NewHostGraph(g, []string{"a", "b"})
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	if id, ok := h.NodeByName("b"); !ok || id != 1 {
		t.Errorf("NodeByName(b) = %d,%v, want 1,true", id, ok)
	}
}
