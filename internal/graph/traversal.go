package graph

// Traversal and connectivity utilities used by the forensics and
// anomaly-discovery layers: BFS reachability (how much of the web the
// good core can see), strongly connected components (farm cores and
// alliances are cycles by construction), and union-find over induced
// subgraphs (clustering high-mass hosts into candidate anomalies).

// ReachableFrom returns a mask of the nodes reachable from the seed
// set by following out-links (the seeds themselves included). This is
// exactly the support of the core-based PageRank vector p': a node the
// core cannot reach has p' = 0 and relative mass 1.
func ReachableFrom(g *Graph, seeds []NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.OutNeighbors(x) {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return seen
}

// CountReachable returns how many nodes a mask marks.
func CountReachable(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// StronglyConnectedComponents returns the component ID of every node,
// with components numbered in reverse topological order (a component
// only links to components with smaller IDs), plus the number of
// components. The implementation is an iterative Tarjan, safe for
// graphs far deeper than the goroutine stack.
func StronglyConnectedComponents(g *Graph) (comp []int32, count int) {
	n := g.NumNodes()
	const unvisited = -1
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []NodeID
	next := int32(0)

	type frame struct {
		node NodeID
		edge int // position within OutNeighbors(node)
	}
	var call []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{node: NodeID(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			adj := g.OutNeighbors(f.node)
			advanced := false
			for f.edge < len(adj) {
				y := adj[f.edge]
				f.edge++
				if index[y] == unvisited {
					index[y] = next
					low[y] = next
					next++
					stack = append(stack, y)
					onStack[y] = true
					call = append(call, frame{node: y})
					advanced = true
					break
				}
				if onStack[y] && index[y] < low[f.node] {
					low[f.node] = index[y]
				}
			}
			if advanced {
				continue
			}
			// All edges done: close the frame.
			x := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[x] < low[parent] {
					low[parent] = low[x]
				}
			}
			if low[x] == index[x] {
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = int32(count)
					if top == x {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// WeaklyConnectedComponents returns the component ID of every node
// when edge direction is ignored, plus the number of components and
// the size of the largest one — the bowtie-style connectivity summary
// usually reported alongside web-graph statistics.
func WeaklyConnectedComponents(g *Graph) (comp []int32, count int, largest int) {
	u := NewUnionFind(g.NumNodes())
	g.Edges(func(x, y NodeID) bool {
		u.Union(x, y)
		return true
	})
	comp = make([]int32, g.NumNodes())
	ids := make(map[NodeID]int32)
	sizes := make(map[int32]int)
	for x := 0; x < g.NumNodes(); x++ {
		root := u.Find(NodeID(x))
		id, ok := ids[root]
		if !ok {
			id = int32(len(ids))
			ids[root] = id
		}
		comp[x] = id
		sizes[id]++
	}
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return comp, len(ids), largest
}

// UnionFind is a disjoint-set structure over dense node IDs.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a UnionFind with n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set, with path halving.
func (u *UnionFind) Find(x NodeID) NodeID {
	i := int32(x)
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return NodeID(i)
}

// Union merges the sets of a and b and reports whether they were
// previously distinct.
func (u *UnionFind) Union(a, b NodeID) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// ClusterInduced groups the member nodes by connectivity in the
// subgraph they induce (edges in either direction count), returning
// clusters sorted by decreasing size. It is the grouping primitive of
// anomaly discovery: good hosts with high relative mass that link to
// each other usually belong to one under-covered community.
func ClusterInduced(g *Graph, members []NodeID) [][]NodeID {
	inSet := make(map[NodeID]bool, len(members))
	for _, x := range members {
		inSet[x] = true
	}
	u := NewUnionFind(g.NumNodes())
	for _, x := range members {
		for _, y := range g.OutNeighbors(x) {
			if inSet[y] {
				u.Union(x, y)
			}
		}
	}
	groups := make(map[NodeID][]NodeID)
	for _, x := range members {
		r := u.Find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]NodeID, 0, len(groups))
	for _, members := range groups {
		out = append(out, members)
	}
	// Sort by decreasing size, ties by smallest member for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b []NodeID) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	return a[0] < b[0]
}
