// Package graph provides a compact, immutable representation of a
// host-level web graph, following the model of Section 2.1 of the paper:
// a directed graph with unweighted edges and no self-links, where nodes
// stand for pages, hosts, or sites depending on granularity.
//
// The representation is a compressed sparse row (CSR) layout over dense
// uint32 node identifiers, holding both the forward (out-neighbor) and
// reverse (in-neighbor) adjacency so that PageRank-style sweeps over
// in-neighbors and farm construction over out-neighbors are both cheap.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of the web graph. Identifiers are dense:
// a graph with n nodes uses exactly the IDs 0..n-1.
type NodeID = uint32

// Graph is an immutable directed graph in CSR form. Build one with a
// Builder; the zero Graph is a valid empty graph.
//
// Self-links are never present (the paper's model disallows them) and
// parallel edges are collapsed, mirroring how the Yahoo! host graph
// collapsed all hyperlinks between two hosts into a single edge.
type Graph struct {
	n int

	// Forward CSR: out-neighbors of node x are
	// outAdj[outStart[x]:outStart[x+1]], sorted ascending.
	outStart []int64
	outAdj   []NodeID

	// Reverse CSR: in-neighbors of node x are
	// inAdj[inStart[x]:inStart[x+1]], sorted ascending.
	inStart []int64
	inAdj   []NodeID
}

// NumNodes returns the number of nodes n; valid IDs are 0..n-1.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 {
	if g.n == 0 {
		return 0
	}
	return g.outStart[g.n]
}

// OutDegree returns the number of out-links of x.
func (g *Graph) OutDegree(x NodeID) int {
	return int(g.outStart[x+1] - g.outStart[x])
}

// InDegree returns the number of in-links of x.
func (g *Graph) InDegree(x NodeID) int {
	return int(g.inStart[x+1] - g.inStart[x])
}

// OutNeighbors returns the nodes pointed to by x, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(x NodeID) []NodeID {
	// lint:ignore sliceexport zero-copy CSR view on the sweep hot path; documented read-only
	return g.outAdj[g.outStart[x]:g.outStart[x+1]]
}

// InNeighbors returns the nodes pointing to x, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(x NodeID) []NodeID {
	// lint:ignore sliceexport zero-copy CSR view on the sweep hot path; documented read-only
	return g.inAdj[g.inStart[x]:g.inStart[x+1]]
}

// HasEdge reports whether the directed edge (x, y) exists.
func (g *Graph) HasEdge(x, y NodeID) bool {
	adj := g.OutNeighbors(x)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= y })
	return i < len(adj) && adj[i] == y
}

// IsDangling reports whether x has no out-links. Dangling nodes receive
// the virtual-link treatment described in Section 2.2 of the paper.
func (g *Graph) IsDangling(x NodeID) bool { return g.OutDegree(x) == 0 }

// Edges calls fn for every directed edge (x, y) in increasing (x, y)
// order, stopping early if fn returns false.
func (g *Graph) Edges(fn func(x, y NodeID) bool) {
	for x := 0; x < g.n; x++ {
		for _, y := range g.OutNeighbors(NodeID(x)) {
			if !fn(NodeID(x), y) {
				return
			}
		}
	}
}

// Validate checks structural invariants of the CSR representation. It is
// primarily useful in tests and after decoding untrusted input.
func (g *Graph) Validate() error {
	if g.n == 0 {
		if len(g.outAdj) != 0 || len(g.inAdj) != 0 {
			return fmt.Errorf("graph: empty graph with %d out / %d in adjacency entries", len(g.outAdj), len(g.inAdj))
		}
		return nil
	}
	if len(g.outStart) != g.n+1 || len(g.inStart) != g.n+1 {
		return fmt.Errorf("graph: offset arrays have lengths %d/%d, want %d", len(g.outStart), len(g.inStart), g.n+1)
	}
	if g.outStart[g.n] != g.inStart[g.n] {
		return fmt.Errorf("graph: forward edge count %d != reverse edge count %d", g.outStart[g.n], g.inStart[g.n])
	}
	if err := validateCSR(g.outStart, g.outAdj, g.n, "out"); err != nil {
		return err
	}
	if err := validateCSR(g.inStart, g.inAdj, g.n, "in"); err != nil {
		return err
	}
	for x := 0; x < g.n; x++ {
		if g.HasEdge(NodeID(x), NodeID(x)) {
			return fmt.Errorf("graph: self-link at node %d", x)
		}
	}
	return nil
}

func validateCSR(start []int64, adj []NodeID, n int, kind string) error {
	if start[0] != 0 {
		return fmt.Errorf("graph: %s offsets start at %d, want 0", kind, start[0])
	}
	if start[n] != int64(len(adj)) {
		return fmt.Errorf("graph: %s offsets end at %d, want %d", kind, start[n], len(adj))
	}
	for x := 0; x < n; x++ {
		lo, hi := start[x], start[x+1]
		if lo > hi {
			return fmt.Errorf("graph: %s offsets decrease at node %d", kind, x)
		}
		for i := lo; i < hi; i++ {
			if int(adj[i]) >= n {
				return fmt.Errorf("graph: %s adjacency of node %d references node %d outside [0,%d)", kind, x, adj[i], n)
			}
			if i > lo && adj[i] <= adj[i-1] {
				return fmt.Errorf("graph: %s adjacency of node %d not strictly increasing at position %d", kind, x, i-lo)
			}
		}
	}
	return nil
}

// FromCSR assembles a Graph directly from a forward CSR adjacency:
// outStart has n+1 offsets and the out-neighbors of node x are
// outAdj[outStart[x]:outStart[x+1]], strictly increasing, with no
// self-links. The reverse CSR is derived. FromCSR takes ownership of
// both slices; callers must not modify them afterwards.
//
// This is the constructor for producers that already emit a sorted,
// deduplicated adjacency — e.g. the delta merge pass — and would waste
// an O(m log m) sort going through a Builder. The input is fully
// validated, so a malformed CSR cannot produce a corrupt Graph.
func FromCSR(outStart []int64, outAdj []NodeID) (*Graph, error) {
	if len(outStart) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs at least the [0] offset row")
	}
	n := len(outStart) - 1
	if n == 0 {
		if len(outAdj) != 0 {
			return nil, fmt.Errorf("graph: empty CSR with %d adjacency entries", len(outAdj))
		}
		return &Graph{}, nil
	}
	// The forward CSR must be checked before deriving the reverse:
	// reverseCSR indexes counters by target ID, so an out-of-range
	// entry would panic rather than error.
	if err := validateCSR(outStart, outAdj, n, "out"); err != nil {
		return nil, err
	}
	g := &Graph{n: n, outStart: outStart, outAdj: outAdj}
	g.inStart, g.inAdj = reverseCSR(outStart, outAdj, n)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Equal reports whether g and o are identical graphs: same node count
// and byte-identical CSR arrays. Since Build, ReadBinary, and FromCSR
// all produce sorted deduplicated adjacency, Equal is exact structural
// equality, not an isomorphism check.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	if g.n == 0 {
		return true
	}
	if len(g.outAdj) != len(o.outAdj) {
		return false
	}
	for i := range g.outStart {
		if g.outStart[i] != o.outStart[i] {
			return false
		}
	}
	for i := range g.outAdj {
		if g.outAdj[i] != o.outAdj[i] {
			return false
		}
	}
	return true
}

// Transpose returns a new graph with every edge reversed. The operation
// is cheap: the forward and reverse CSR halves are swapped, sharing the
// underlying arrays with the receiver.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		n:        g.n,
		outStart: g.inStart,
		outAdj:   g.inAdj,
		inStart:  g.outStart,
		inAdj:    g.outAdj,
	}
}

// Subgraph returns the subgraph induced by keep (nodes with keep[x]
// true), along with a mapping from new IDs to original IDs. Edges with
// either endpoint outside the kept set are dropped.
func (g *Graph) Subgraph(keep []bool) (*Graph, []NodeID) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("graph: Subgraph mask has length %d, want %d", len(keep), g.n))
	}
	remap := make([]int64, g.n)
	var orig []NodeID
	for x := 0; x < g.n; x++ {
		if keep[x] {
			remap[x] = int64(len(orig))
			orig = append(orig, NodeID(x))
		} else {
			remap[x] = -1
		}
	}
	b := NewBuilder(len(orig))
	for x := 0; x < g.n; x++ {
		if !keep[x] {
			continue
		}
		for _, y := range g.OutNeighbors(NodeID(x)) {
			if keep[y] {
				b.AddEdge(NodeID(remap[x]), NodeID(remap[y]))
			}
		}
	}
	return b.Build(), orig
}
