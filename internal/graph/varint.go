package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Gap-encoded adjacency lists (WebGraph-style). A strictly increasing
// list x_0 < x_1 < ... < x_{d-1} is stored as the uvarints
//
//	x_0, x_1−x_0, x_2−x_1, ..., x_{d-1}−x_{d-2}
//
// i.e. the first element absolute and every later element as the gap
// to its predecessor. Because CSR adjacency is sorted, gaps are small
// for locally dense graphs and most entries fit in one or two bytes.
// This is the single wire format shared by the on-disk graph
// (internal/diskgraph, format version 1) and the in-memory blocked
// sweep layout (internal/pagerank); the degree is carried out of band
// by the caller.

// AppendGapList appends the gap encoding of list, which must be
// strictly increasing, to dst and returns the extended slice.
func AppendGapList(dst []byte, list []NodeID) []byte {
	prev := NodeID(0)
	for i, x := range list {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(x))
		} else {
			if x <= prev {
				panic(fmt.Sprintf("graph: AppendGapList input not strictly increasing at position %d (%d after %d)", i, x, prev))
			}
			dst = binary.AppendUvarint(dst, uint64(x-prev))
		}
		prev = x
	}
	return dst
}

// DecodeGapList decodes deg gap-encoded values from data starting at
// offset pos, appending them to out, and returns the extended slice
// and the offset one past the encoding. The decoded list is strictly
// increasing with every element < n (pass n = 2^32−1 to skip the
// range check). Truncated or malformed input yields an error, never a
// panic: the decoder is safe on untrusted bytes.
func DecodeGapList(out []NodeID, data []byte, pos, deg int, n uint64) ([]NodeID, int, error) {
	cur := uint64(0)
	for i := 0; i < deg; i++ {
		v, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return out, pos, fmt.Errorf("graph: gap list truncated at element %d/%d", i, deg)
		}
		pos += k
		if i == 0 {
			cur = v
		} else {
			if v == 0 {
				return out, pos, fmt.Errorf("graph: zero gap at element %d/%d", i, deg)
			}
			cur += v
		}
		if cur >= n || cur > math.MaxUint32 {
			return out, pos, fmt.Errorf("graph: gap list element %d/%d decodes to %d outside [0,%d)", i, deg, cur, n)
		}
		out = append(out, NodeID(cur))
	}
	return out, pos, nil
}

// GapDecoder streams one gap-encoded list from an io.ByteReader. It is
// the decoder used by internal/diskgraph, whose adjacency never fits
// in memory at once; in-memory consumers use DecodeGapList or inline
// the arithmetic. Reuse a decoder across lists via Reset.
type GapDecoder struct {
	br   io.ByteReader
	n    uint64 // exclusive upper bound on decoded values
	prev uint64
	rem  int
	pos  int // elements already decoded in the current list
}

// NewGapDecoder returns a decoder reading from br that rejects any
// decoded value ≥ n.
func NewGapDecoder(br io.ByteReader, n uint64) *GapDecoder {
	return &GapDecoder{br: br, n: n}
}

// Reset prepares the decoder for a new list of deg elements.
func (d *GapDecoder) Reset(deg int) {
	d.prev, d.rem, d.pos = 0, deg, 0
}

// Remaining returns the number of elements left in the current list.
func (d *GapDecoder) Remaining() int { return d.rem }

// Next decodes the next element of the current list. Calling Next with
// no elements remaining returns io.EOF; any decode failure (including
// a truncated stream, which surfaces as io.ErrUnexpectedEOF from the
// underlying reader semantics) is returned as an error.
func (d *GapDecoder) Next() (NodeID, error) {
	if d.rem <= 0 {
		return 0, io.EOF
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF && d.pos > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("graph: gap list element %d: %w", d.pos, err)
	}
	if d.pos == 0 {
		d.prev = v
	} else {
		if v == 0 {
			return 0, fmt.Errorf("graph: zero gap at element %d", d.pos)
		}
		d.prev += v
	}
	if d.prev >= d.n || d.prev > math.MaxUint32 {
		return 0, fmt.Errorf("graph: gap list element %d decodes to %d outside [0,%d)", d.pos, d.prev, d.n)
	}
	d.rem--
	d.pos++
	return NodeID(d.prev), nil
}
