package graph

import "fmt"

// ShardOf deterministically assigns a host name to one of n shards.
// It is the single partitioning function of the serving tier: the
// router, the shard nodes, the delta splitter, and genweb's
// pre-partitioned output must all agree on host placement, so they all
// call this. The hash is FNV-1a over the name bytes (inlined so the
// hot routing path allocates nothing), reduced modulo n; host names
// are already canonicalized lower-case by HostOf, so no normalization
// happens here.
func ShardOf(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// HostPartition is the result of splitting one host graph into n
// shard-local subgraphs. Each part keeps only the hosts ShardOf
// assigns to it and the edges with both endpoints inside the part;
// edges crossing shards are dropped and counted in CrossEdges — the
// shard tier serves per-partition records, and each shard's estimates
// are computed over its local subgraph until a distributed solve
// lands (see DESIGN.md §7).
type HostPartition struct {
	// Parts[s] is shard s's host graph. Hosts keep their relative
	// order from the source graph, so partitioning is deterministic.
	Parts []*HostGraph
	// Shard[x] is the shard owning source node x.
	Shard []int32
	// Local[x] is node x's ID inside Parts[Shard[x]].
	Local []NodeID
	// CrossEdges counts source edges dropped because their endpoints
	// landed on different shards.
	CrossEdges int64
}

// PartitionHosts splits h into n shard-local host graphs using
// ShardOf over the host names. Every host lands in exactly one part;
// parts may be empty for tiny graphs. n must be positive.
func PartitionHosts(h *HostGraph, n int) (*HostPartition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: partition into %d shards", n)
	}
	nodes := h.Graph.NumNodes()
	p := &HostPartition{
		Parts: make([]*HostGraph, n),
		Shard: make([]int32, nodes),
		Local: make([]NodeID, nodes),
	}
	names := make([][]string, n)
	for x := 0; x < nodes; x++ {
		s := ShardOf(h.Names[x], n)
		p.Shard[x] = int32(s)
		p.Local[x] = NodeID(len(names[s]))
		names[s] = append(names[s], h.Names[x])
	}
	builders := make([]*Builder, n)
	for s := 0; s < n; s++ {
		builders[s] = NewBuilder(len(names[s]))
	}
	h.Graph.Edges(func(x, y NodeID) bool {
		if p.Shard[x] != p.Shard[y] {
			p.CrossEdges++
			return true
		}
		builders[p.Shard[x]].AddEdge(p.Local[x], p.Local[y])
		return true
	})
	for s := 0; s < n; s++ {
		part, err := NewHostGraph(builders[s].Build(), names[s])
		if err != nil {
			return nil, fmt.Errorf("graph: shard %d: %w", s, err)
		}
		p.Parts[s] = part
	}
	return p, nil
}
