package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchEdges(n, perNode int) (int, [][2]NodeID) {
	rng := rand.New(rand.NewSource(1))
	edges := make([][2]NodeID, 0, n*perNode)
	for x := 0; x < n; x++ {
		for i := 0; i < perNode; i++ {
			edges = append(edges, [2]NodeID{NodeID(x), NodeID(rng.Intn(n))})
		}
	}
	return n, edges
}

func BenchmarkBuild(b *testing.B) {
	n, edges := benchEdges(100000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(n)
		for _, e := range edges {
			bl.AddEdge(e[0], e[1])
		}
		bl.Build()
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	g := FromEdges(benchEdges(100000, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	g := FromEdges(benchEdges(100000, 8))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	g := FromEdges(benchEdges(100000, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(g)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := FromEdges(benchEdges(100000, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(i%100000), NodeID((i*7)%100000))
	}
}
