package graph

import (
	"math/rand"
	"testing"
)

func randGraphLocal(rng *rand.Rand, n, maxOut int) *Graph {
	b := NewBuilder(n)
	for x := 0; x < n; x++ {
		deg := rng.Intn(maxOut + 1)
		for i := 0; i < deg; i++ {
			y := NodeID(rng.Intn(n))
			if y != NodeID(x) {
				b.AddEdge(NodeID(x), y)
			}
		}
	}
	return b.Build()
}

func TestDegreeOrderInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randGraphLocal(rng, 2+rng.Intn(200), 8)
		perm, inv := g.DegreeOrder()
		n := g.NumNodes()
		if len(perm) != n || len(inv) != n {
			t.Fatalf("trial %d: perm/inv lengths %d/%d, want %d", trial, len(perm), len(inv), n)
		}
		for orig := 0; orig < n; orig++ {
			if inv[perm[orig]] != NodeID(orig) {
				t.Fatalf("trial %d: inv[perm[%d]] = %d", trial, orig, inv[perm[orig]])
			}
		}
		for p := 1; p < n; p++ {
			da, db := g.OutDegree(inv[p-1]), g.OutDegree(inv[p])
			if da < db {
				t.Fatalf("trial %d: out-degree increases at rank %d (%d then %d)", trial, p, da, db)
			}
			if da == db && inv[p-1] >= inv[p] {
				t.Fatalf("trial %d: tie at rank %d not broken by ascending ID", trial, p)
			}
		}
	}
}

func TestPermuteStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		g := randGraphLocal(rng, 2+rng.Intn(150), 6)
		perm, inv := g.DegreeOrder()
		h, err := g.Permute(perm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d: permuted graph invalid: %v", trial, err)
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: size changed: %d/%d nodes, %d/%d edges",
				trial, h.NumNodes(), g.NumNodes(), h.NumEdges(), g.NumEdges())
		}
		// Degrees preserved node-for-node, edges mapped bijectively.
		for x := 0; x < g.NumNodes(); x++ {
			p := perm[x]
			if h.OutDegree(p) != g.OutDegree(NodeID(x)) || h.InDegree(p) != g.InDegree(NodeID(x)) {
				t.Fatalf("trial %d: degree mismatch at node %d", trial, x)
			}
			for _, y := range g.OutNeighbors(NodeID(x)) {
				if !h.HasEdge(p, perm[y]) {
					t.Fatalf("trial %d: edge (%d,%d) missing as (%d,%d)", trial, x, y, p, perm[y])
				}
			}
		}
		// Permuting back with the inverse must reproduce the original.
		back, err := h.Permute(inv)
		if err != nil {
			t.Fatalf("trial %d: inverse permute: %v", trial, err)
		}
		if !back.Equal(g) {
			t.Fatalf("trial %d: inverse permutation did not restore the graph", trial)
		}
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	if _, err := g.Permute([]NodeID{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := g.Permute([]NodeID{0, 1, 3}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := g.Permute([]NodeID{0, 1, 1}); err == nil {
		t.Fatal("duplicate label accepted")
	}
	empty := &Graph{}
	if h, err := empty.Permute(nil); err != nil || h.NumNodes() != 0 {
		t.Fatalf("empty permute: %v", err)
	}
}
