package graph

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"spammass/internal/obs"
)

// LoadFile reads a graph file in either the text edge-list or the
// binary SMGR format, sniffing the four-byte magic to pick the codec.
// It is the shared loader of the CLIs and returns a filled GraphInfo
// alongside the graph. octx, when non-nil, additionally records a
// "graph.load" span (path, format, node/edge counts, bytes read) and
// the graph.* metrics; a nil octx costs nothing beyond the info.
func LoadFile(path string, octx *obs.Context) (*Graph, *obs.GraphInfo, error) {
	sp := octx.Span("graph.load")
	defer sp.End()
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: open %s: %w", path, err)
	}
	defer f.Close()
	cr := &obs.CountingReader{R: f}
	br := bufio.NewReaderSize(cr, 1<<20)
	format := "text"
	if magic, perr := br.Peek(4); perr == nil && string(magic) == "SMGR" {
		format = "binary"
	}
	var g *Graph
	if format == "binary" {
		g, err = ReadBinary(br)
	} else {
		g, err = ReadText(br)
	}
	if err != nil {
		return nil, nil, err
	}
	info := &obs.GraphInfo{
		Path:   path,
		Format: format,
		Nodes:  g.NumNodes(),
		Edges:  int64(g.NumEdges()),
		Bytes:  cr.N,
		LoadNS: int64(time.Since(start)),
	}
	if sp != nil {
		sp.SetAttr("path", path)
		sp.SetAttr("format", format)
		sp.SetAttr("nodes", info.Nodes)
		sp.SetAttr("edges", info.Edges)
		sp.SetAttr("bytes", info.Bytes)
	}
	if octx != nil {
		octx.Gauge("graph.nodes").Set(float64(info.Nodes))
		octx.Gauge("graph.edges").Set(float64(info.Edges))
		octx.Counter("graph.bytes_read_total").Add(cr.N)
		octx.Histogram("graph.load_seconds").Observe(time.Since(start).Seconds())
	}
	return g, info, nil
}

// BuildWith is Builder.Build with observability: the sort/dedup/CSR
// freeze is recorded as a "graph.build" span with node and edge
// counts, and the graph.build_seconds histogram is updated.
func (b *Builder) BuildWith(octx *obs.Context) *Graph {
	sp := octx.Span("graph.build")
	defer sp.End()
	start := time.Now()
	pending := b.NumPendingEdges()
	g := b.Build()
	if sp != nil {
		sp.SetAttr("nodes", g.NumNodes())
		sp.SetAttr("edges", g.NumEdges())
		sp.SetAttr("pending_edges", pending)
	}
	octx.Histogram("graph.build_seconds").Observe(time.Since(start).Seconds())
	return g
}
