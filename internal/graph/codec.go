package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format: a header line "n <nodes>" followed by one "src dst" pair
// per line. Lines starting with '#' are comments. This mirrors the usual
// interchange format for published web graphs (e.g. WebGraph edge dumps).

// WriteText writes g in the text edge-list format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumNodes()); err != nil {
		return err
	}
	var err error
	g.Edges(func(x, y NodeID) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", x, y)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format produced by WriteText.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n int
			if _, err := fmt.Sscanf(text, "n %d", &n); err != nil {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\": %w", line, err)
			}
			b = NewBuilder(n)
			continue
		}
		sp := strings.IndexByte(text, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
		}
		x, err := strconv.ParseUint(text[:sp], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", line, err)
		}
		y, err := strconv.ParseUint(strings.TrimSpace(text[sp+1:]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination: %w", line, err)
		}
		if int(x) >= b.NumNodes() || int(y) >= b.NumNodes() {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) outside node space [0,%d)", line, x, y, b.NumNodes())
		}
		b.AddEdge(NodeID(x), NodeID(y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input, missing header")
	}
	return b.Build(), nil
}

// Binary format: magic, version, node count, then the forward CSR
// (offsets as varint deltas, adjacency as varint gaps). The reverse CSR
// is rebuilt on load. Varint gap encoding keeps large power-law graphs
// compact on disk.
const (
	binaryMagic   = "SMGR"
	binaryVersion = 1
)

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := putUvarint(binaryVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(g.NumNodes())); err != nil {
		return err
	}
	for x := 0; x < g.NumNodes(); x++ {
		adj := g.OutNeighbors(NodeID(x))
		if err := putUvarint(uint64(len(adj))); err != nil {
			return err
		}
		prev := uint64(0)
		for i, y := range adj {
			gap := uint64(y) - prev
			if i == 0 {
				gap = uint64(y)
			}
			if err := putUvarint(gap); err != nil {
				return err
			}
			prev = uint64(y)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	if n64 > 1<<32 {
		return nil, fmt.Errorf("graph: node count %d exceeds uint32 ID space", n64)
	}
	n := int(n64)
	g := &Graph{n: n}
	g.outStart = make([]int64, n+1)
	for x := 0; x < n; x++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d degree: %w", x, err)
		}
		prev := uint64(0)
		for i := uint64(0); i < deg; i++ {
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d adjacency: %w", x, err)
			}
			y := prev + gap
			if i == 0 {
				y = gap
			}
			if y >= n64 {
				return nil, fmt.Errorf("graph: node %d references node %d outside [0,%d)", x, y, n)
			}
			if i > 0 && y <= prev {
				return nil, fmt.Errorf("graph: node %d adjacency not increasing", x)
			}
			g.outAdj = append(g.outAdj, NodeID(y))
			prev = y
		}
		g.outStart[x+1] = g.outStart[x] + int64(deg)
	}
	g.inStart, g.inAdj = reverseCSR(g.outStart, g.outAdj, n)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
