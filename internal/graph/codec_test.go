package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomGraphForCodec(rng *rand.Rand, n, maxOut int) *Graph {
	b := NewBuilder(n)
	for x := 0; x < n; x++ {
		d := rng.Intn(maxOut + 1)
		for i := 0; i < d; i++ {
			b.AddEdge(NodeID(x), NodeID(rng.Intn(n)))
		}
	}
	return b.Build()
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	equal := true
	a.Edges(func(x, y NodeID) bool {
		if !b.HasEdge(x, y) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func TestTextRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {4, 0}, {3, 2}})
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Error("text round trip changed the graph")
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 3\n0 1\n# another\n2 1\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("parsed %d nodes / %d edges, want 3 / 2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "0 1\n"},
		{"malformed edge", "n 2\n01\n"},
		{"bad source", "n 2\nx 1\n"},
		{"bad destination", "n 2\n0 y\n"},
		{"out of range", "n 2\n0 9\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadText(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := FromEdges(6, [][2]NodeID{{0, 5}, {5, 0}, {2, 3}, {2, 4}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Error("binary round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SMGR\x02"),             // bad version
		[]byte("SMGR\x01\x05"),         // truncated after node count
		[]byte("SMGR\x01\x02\x01\x07"), // adjacency out of range
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: ReadBinary accepted garbage", i)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphForCodec(rng, 1+rng.Intn(60), 5)
		var tb, bb bytes.Buffer
		if err := WriteText(&tb, g); err != nil {
			return false
		}
		if err := WriteBinary(&bb, g); err != nil {
			return false
		}
		gt, err := ReadText(&tb)
		if err != nil {
			return false
		}
		gb, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		return graphsEqual(g, gt) && graphsEqual(g, gb) && gb.Validate() == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary(empty): %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary(empty): %v", err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Errorf("empty graph round trip produced %d nodes / %d edges", g2.NumNodes(), g2.NumEdges())
	}
}
