package graph

import (
	"fmt"
	"strings"
	"time"

	"spammass/internal/obs"
)

// HostOf extracts the host-name part of a URL: everything between the
// scheme prefix (if any) and the first '/', stripped of port and
// lower-cased. This matches the paper's footnote definition of a web
// host ("the part of the URL between the http:// prefix and the first /
// character"); no alias detection is performed, so www-cs.stanford.edu
// and cs.stanford.edu are distinct hosts, exactly as in the paper.
func HostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		// Strip user-info; a legal host contains no '@', so the last
		// one is the boundary.
		s = s[i+1:]
	}
	if i := strings.LastIndexByte(s, ':'); i >= 0 && strings.IndexByte(s[i+1:], ']') < 0 {
		// strip a port, but not the tail of a bare IPv6 literal
		if _, ok := allDigits(s[i+1:]); ok {
			s = s[:i]
		}
	}
	return strings.ToLower(strings.TrimRight(s, "."))
}

func allDigits(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	v := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + int(r-'0')
	}
	return v, true
}

// HostGraph is a host-level web graph together with the host name of
// each node, produced by collapsing a page-level graph (Section 4.1).
type HostGraph struct {
	Graph *Graph
	// Names[x] is the host name of node x.
	Names []string
	// index maps a host name back to its node ID.
	index map[string]NodeID
}

// NodeByName returns the node ID for a host name.
func (h *HostGraph) NodeByName(name string) (NodeID, bool) {
	id, ok := h.index[name]
	return id, ok
}

// HostIndex returns the name→node map of the graph. The internal index
// is built once at construction; each call returns a fresh copy, so
// callers may hold or mutate the result without aliasing the graph's
// own lookup state (the same no-shared-mutable-state rule the
// sliceexport analyzer enforces for numeric slices). Use NodeByName for
// single lookups; HostIndex is for callers that need the whole table,
// e.g. a serving snapshot that must keep resolving names after the
// HostGraph itself has been replaced.
func (h *HostGraph) HostIndex() map[string]NodeID {
	out := make(map[string]NodeID, len(h.index))
	for name, id := range h.index {
		out[name] = id
	}
	return out
}

// CollapseToHosts builds the host-level graph from a page-level graph g
// and the URL of each page. All hyperlinks between any pair of pages on
// two different hosts are collapsed into a single directed edge, and
// intra-host links disappear (they would be self-links at host level).
func CollapseToHosts(g *Graph, pageURLs []string) (*HostGraph, error) {
	return CollapseToHostsWith(g, pageURLs, nil)
}

// CollapseToHostsWith is CollapseToHosts with observability: the
// collapse is recorded as a "graph.collapse" span with page/host/edge
// counts, and the graph.collapse_seconds histogram is updated.
func CollapseToHostsWith(g *Graph, pageURLs []string, octx *obs.Context) (*HostGraph, error) {
	sp := octx.Span("graph.collapse")
	defer sp.End()
	start := time.Now()
	if len(pageURLs) != g.NumNodes() {
		return nil, fmt.Errorf("graph: %d URLs for %d pages", len(pageURLs), g.NumNodes())
	}
	index := make(map[string]NodeID)
	var names []string
	pageHost := make([]NodeID, g.NumNodes())
	for p, url := range pageURLs {
		host := HostOf(url)
		if host == "" {
			return nil, fmt.Errorf("graph: page %d has URL %q with empty host", p, url)
		}
		id, ok := index[host]
		if !ok {
			id = NodeID(len(names))
			index[host] = id
			names = append(names, host)
		}
		pageHost[p] = id
	}
	b := NewBuilder(len(names))
	g.Edges(func(x, y NodeID) bool {
		b.AddEdge(pageHost[x], pageHost[y]) // self-links dropped by AddEdge
		return true
	})
	hg := &HostGraph{Graph: b.Build(), Names: names, index: index}
	if sp != nil {
		sp.SetAttr("pages", g.NumNodes())
		sp.SetAttr("hosts", hg.Graph.NumNodes())
		sp.SetAttr("edges", hg.Graph.NumEdges())
	}
	octx.Histogram("graph.collapse_seconds").Observe(time.Since(start).Seconds())
	return hg, nil
}

// NewHostGraph wraps an existing host-level graph with a name table.
func NewHostGraph(g *Graph, names []string) (*HostGraph, error) {
	if len(names) != g.NumNodes() {
		return nil, fmt.Errorf("graph: %d names for %d hosts", len(names), g.NumNodes())
	}
	index := make(map[string]NodeID, len(names))
	for i, name := range names {
		if _, dup := index[name]; dup {
			return nil, fmt.Errorf("graph: duplicate host name %q", name)
		}
		index[name] = NodeID(i)
	}
	return &HostGraph{Graph: g, Names: names, index: index}, nil
}
