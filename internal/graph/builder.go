package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates edges and produces an immutable Graph. It
// tolerates duplicate edges (collapsed, as the host graph collapses all
// hyperlinks between a pair of hosts into one edge) and silently drops
// self-links (disallowed by the web graph model of Section 2.1).
//
// A Builder is not safe for concurrent use.
type Builder struct {
	n     int
	src   []NodeID
	dst   []NodeID
	built bool
}

// NewBuilder returns a Builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// NumNodes returns the number of nodes the built graph will have.
func (b *Builder) NumNodes() int { return b.n }

// NumPendingEdges returns the number of edges added so far, before
// duplicate collapsing.
func (b *Builder) NumPendingEdges() int { return len(b.src) }

// Grow extends the node ID space to at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// Reserve pre-allocates capacity for at least m pending edges. Web-scale
// generators know their expected edge count (hosts × mean out-degree);
// reserving up front replaces the ~2× append-doubling overshoot of
// growing edge buffers with a single right-sized allocation.
func (b *Builder) Reserve(m int) {
	if cap(b.src) < m {
		b.src = append(make([]NodeID, 0, m), b.src...)
		b.dst = append(make([]NodeID, 0, m), b.dst...)
	}
}

// AddNode appends a fresh node and returns its ID.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.n)
	b.n++
	return id
}

// AddEdge records the directed edge (x, y). Self-links are ignored.
// It panics if either endpoint is outside the current ID space.
func (b *Builder) AddEdge(x, y NodeID) {
	if int(x) >= b.n || int(y) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside node space [0,%d)", x, y, b.n))
	}
	if x == y {
		return
	}
	b.src = append(b.src, x)
	b.dst = append(b.dst, y)
}

// Build sorts, deduplicates, and freezes the accumulated edges into a
// Graph. The Builder must not be reused afterwards.
//
// Edges are bucketed into CSR rows by a counting scatter (two linear
// passes over the pending edges) and each row is then sorted and
// deduplicated in place — O(m + Σ dₓ·log dₓ) with sequential access,
// where the old global comparison sort over an index array was
// O(m·log m) of cache-hostile double indirection. At web scale (10⁷
// hosts, ~10⁸ pending edges) the global sort dominated generation
// time; the counting scatter makes Build a small fraction of it.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Builder.Build called twice")
	}
	b.built = true

	m := len(b.src)
	g := &Graph{n: b.n}
	g.outStart = make([]int64, b.n+1)
	for _, x := range b.src {
		g.outStart[x+1]++
	}
	for x := 0; x < b.n; x++ {
		g.outStart[x+1] += g.outStart[x]
	}
	adj := make([]NodeID, m)
	cursor := make([]int64, b.n)
	copy(cursor, g.outStart[:b.n])
	for i, x := range b.src {
		adj[cursor[x]] = b.dst[i]
		cursor[x]++
	}
	// The pending-edge buffers are dead from here on; releasing them
	// before the dedup and transpose passes keeps peak memory at one
	// adjacency copy plus the CSR being built.
	b.src, b.dst = nil, nil

	// Sort each row and compact duplicates in place. The write cursor w
	// never passes the read position (compaction only shrinks rows), so
	// no scratch copy is needed.
	w := int64(0)
	for x := 0; x < b.n; x++ {
		lo, hi := g.outStart[x], g.outStart[x+1]
		row := adj[lo:hi]
		slices.Sort(row)
		g.outStart[x] = w
		var last NodeID
		for i, y := range row {
			if i > 0 && y == last {
				continue // collapse duplicate edge
			}
			adj[w] = y
			w++
			last = y
		}
	}
	g.outStart[b.n] = w
	g.outAdj = adj[:w]

	g.inStart, g.inAdj = reverseCSR(g.outStart, g.outAdj, b.n)
	return g
}

// reverseCSR computes the transpose adjacency of a CSR structure whose
// per-node lists are sorted ascending; the result is sorted as well
// because the counting pass visits sources in increasing order.
func reverseCSR(start []int64, adj []NodeID, n int) (rstart []int64, radj []NodeID) {
	rstart = make([]int64, n+1)
	for _, y := range adj {
		rstart[y+1]++
	}
	for x := 0; x < n; x++ {
		rstart[x+1] += rstart[x]
	}
	radj = make([]NodeID, len(adj))
	cursor := make([]int64, n)
	copy(cursor, rstart[:n])
	for x := 0; x < n; x++ {
		for i := start[x]; i < start[x+1]; i++ {
			y := adj[i]
			radj[cursor[y]] = NodeID(x)
			cursor[y]++
		}
	}
	return rstart, radj
}

// FromEdges is a convenience constructor building a graph with n nodes
// from an explicit edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
