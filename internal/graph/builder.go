package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It
// tolerates duplicate edges (collapsed, as the host graph collapses all
// hyperlinks between a pair of hosts into one edge) and silently drops
// self-links (disallowed by the web graph model of Section 2.1).
//
// A Builder is not safe for concurrent use.
type Builder struct {
	n     int
	src   []NodeID
	dst   []NodeID
	built bool
}

// NewBuilder returns a Builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// NumNodes returns the number of nodes the built graph will have.
func (b *Builder) NumNodes() int { return b.n }

// NumPendingEdges returns the number of edges added so far, before
// duplicate collapsing.
func (b *Builder) NumPendingEdges() int { return len(b.src) }

// Grow extends the node ID space to at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddNode appends a fresh node and returns its ID.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.n)
	b.n++
	return id
}

// AddEdge records the directed edge (x, y). Self-links are ignored.
// It panics if either endpoint is outside the current ID space.
func (b *Builder) AddEdge(x, y NodeID) {
	if int(x) >= b.n || int(y) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside node space [0,%d)", x, y, b.n))
	}
	if x == y {
		return
	}
	b.src = append(b.src, x)
	b.dst = append(b.dst, y)
}

// Build sorts, deduplicates, and freezes the accumulated edges into a
// Graph. The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Builder.Build called twice")
	}
	b.built = true

	m := len(b.src)
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if b.src[a] != b.src[c] {
			return b.src[a] < b.src[c]
		}
		return b.dst[a] < b.dst[c]
	})

	g := &Graph{n: b.n}
	g.outStart = make([]int64, b.n+1)
	g.outAdj = make([]NodeID, 0, m)
	prevX, prevY := NodeID(0), NodeID(0)
	first := true
	for _, idx := range order {
		x, y := b.src[idx], b.dst[idx]
		if !first && x == prevX && y == prevY {
			continue // collapse duplicate edge
		}
		first = false
		prevX, prevY = x, y
		g.outAdj = append(g.outAdj, y)
		g.outStart[x+1]++
	}
	for x := 0; x < b.n; x++ {
		g.outStart[x+1] += g.outStart[x]
	}
	b.src, b.dst = nil, nil

	g.inStart, g.inAdj = reverseCSR(g.outStart, g.outAdj, b.n)
	return g
}

// reverseCSR computes the transpose adjacency of a CSR structure whose
// per-node lists are sorted ascending; the result is sorted as well
// because the counting pass visits sources in increasing order.
func reverseCSR(start []int64, adj []NodeID, n int) (rstart []int64, radj []NodeID) {
	rstart = make([]int64, n+1)
	for _, y := range adj {
		rstart[y+1]++
	}
	for x := 0; x < n; x++ {
		rstart[x+1] += rstart[x]
	}
	radj = make([]NodeID, len(adj))
	cursor := make([]int64, n)
	copy(cursor, rstart[:n])
	for x := 0; x < n; x++ {
		for i := start[x]; i < start[x+1]; i++ {
			y := adj[i]
			radj[cursor[y]] = NodeID(x)
			cursor[y]++
		}
	}
	return rstart, radj
}

// FromEdges is a convenience constructor building a graph with n nodes
// from an explicit edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
