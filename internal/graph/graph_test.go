package graph

import (
	"reflect"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	g := b.Build()

	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(1); !reflect.DeepEqual(got, []NodeID{0, 2}) {
		t.Errorf("InNeighbors(1) = %v, want [0 2]", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderCollapsesDuplicates(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want duplicates collapsed to 1", g.NumEdges())
	}
}

func TestBuilderDropsSelfLinks(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want self-links dropped, 1 left", g.NumEdges())
	}
	if g.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) = true after self-link drop")
	}
}

func TestBuilderPanics(t *testing.T) {
	t.Run("edge outside space", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("AddEdge outside node space did not panic")
			}
		}()
		NewBuilder(2).AddEdge(0, 5)
	})
	t.Run("double build", func(t *testing.T) {
		b := NewBuilder(1)
		b.Build()
		defer func() {
			if recover() == nil {
				t.Error("second Build did not panic")
			}
		}()
		b.Build()
	})
}

func TestBuilderAddNodeGrow(t *testing.T) {
	b := NewBuilder(0)
	a := b.AddNode()
	c := b.AddNode()
	if a != 0 || c != 1 {
		t.Fatalf("AddNode IDs = %d,%d, want 0,1", a, c)
	}
	b.Grow(5)
	b.AddEdge(0, 4)
	g := b.Build()
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5 after Grow", g.NumNodes())
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {0, 3}, {2, 4}})
	cases := []struct {
		x, y NodeID
		want bool
	}{
		{0, 1, true}, {0, 3, true}, {2, 4, true},
		{1, 0, false}, {0, 2, false}, {3, 0, false}, {0, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.x, c.y); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {3, 1}})
	gt := g.Transpose()
	if err := gt.Validate(); err != nil {
		t.Fatalf("transpose Validate: %v", err)
	}
	g.Edges(func(x, y NodeID) bool {
		if !gt.HasEdge(y, x) {
			t.Errorf("edge (%d,%d) missing reversed in transpose", x, y)
		}
		return true
	})
	if gt.NumEdges() != g.NumEdges() {
		t.Errorf("transpose edge count %d, want %d", gt.NumEdges(), g.NumEdges())
	}
	// Double transpose must be the original.
	gtt := gt.Transpose()
	g.Edges(func(x, y NodeID) bool {
		if !gtt.HasEdge(x, y) {
			t.Errorf("edge (%d,%d) missing in double transpose", x, y)
		}
		return true
	})
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	keep := []bool{true, true, false, true, true}
	sub, orig := g.Subgraph(keep)
	if sub.NumNodes() != 4 {
		t.Fatalf("subgraph has %d nodes, want 4", sub.NumNodes())
	}
	if want := []NodeID{0, 1, 3, 4}; !reflect.DeepEqual(orig, want) {
		t.Fatalf("orig mapping = %v, want %v", orig, want)
	}
	// Kept edges: 0→1 (now 0→1), 3→4 (now 2→3), 4→0 (now 3→0).
	if sub.NumEdges() != 3 {
		t.Fatalf("subgraph has %d edges, want 3", sub.NumEdges())
	}
	for _, e := range [][2]NodeID{{0, 1}, {2, 3}, {3, 0}} {
		if !sub.HasEdge(e[0], e[1]) {
			t.Errorf("subgraph missing edge %v", e)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}})
	count := 0
	g.Edges(func(x, y NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Edges visited %d edges after early stop, want 2", count)
	}
}

func TestComputeStats(t *testing.T) {
	// 0→1, 2 isolated, 3→1; node 1 dangling, nodes 0,3 have no inlinks.
	g := FromEdges(4, [][2]NodeID{{0, 1}, {3, 1}})
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.NoInlinks != 3 { // 0, 2, 3
		t.Errorf("NoInlinks = %d, want 3", s.NoInlinks)
	}
	if s.NoOutlinks != 2 { // 1, 2
		t.Errorf("NoOutlinks = %d, want 2", s.NoOutlinks)
	}
	if s.Isolated != 1 { // 2
		t.Errorf("Isolated = %d, want 1", s.Isolated)
	}
	if s.MaxInDegree != 2 || s.MaxOutDegree != 1 {
		t.Errorf("degrees = %d/%d, want 2/1", s.MaxInDegree, s.MaxOutDegree)
	}
	if got := s.FracIsolated(); got != 0.25 {
		t.Errorf("FracIsolated = %v, want 0.25", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {3, 1}})
	outH := DegreeHistogram(g, false)
	if want := []int64{2, 1, 1}; !reflect.DeepEqual(outH, want) {
		t.Errorf("out-degree histogram = %v, want %v", outH, want)
	}
	inH := DegreeHistogram(g, true)
	if want := []int64{2, 1, 1}; !reflect.DeepEqual(inH, want) {
		t.Errorf("in-degree histogram = %v, want %v", inH, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.outAdj[0] = 7 // out of range
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range adjacency")
	}
}

func TestFromCSR(t *testing.T) {
	// 0→{1,2}, 1→{2}, 2→{} — the canonical CSR of a 3-node chain+skip.
	g, err := FromCSR([]int64{0, 2, 3, 3}, []NodeID{1, 2, 2})
	if err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	want := FromEdges(3, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}})
	if !g.Equal(want) {
		t.Error("FromCSR graph differs from FromEdges equivalent")
	}
	// The reverse CSR must be derived, not left empty.
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after FromCSR: %v", err)
	}
}

func TestFromCSREmpty(t *testing.T) {
	g, err := FromCSR([]int64{0}, nil)
	if err != nil {
		t.Fatalf("empty CSR rejected: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty CSR produced %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestFromCSRRejectsMalformed(t *testing.T) {
	cases := []struct {
		name     string
		outStart []int64
		outAdj   []NodeID
	}{
		{"no offsets", nil, nil},
		{"empty with adjacency", []int64{0}, []NodeID{1}},
		{"offsets not ending at len", []int64{0, 1, 1}, []NodeID{1, 0}},
		{"decreasing offsets", []int64{0, 2, 1}, []NodeID{1, 0}},
		{"self link", []int64{0, 1, 1}, []NodeID{0}},
		{"unsorted adjacency", []int64{0, 2, 2, 2}, []NodeID{2, 1}},
		{"duplicate adjacency", []int64{0, 2, 2, 2}, []NodeID{1, 1}},
		{"out of range target", []int64{0, 1, 1}, []NodeID{5}},
	}
	for _, tc := range cases {
		if _, err := FromCSR(tc.outStart, tc.outAdj); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGraphEqual(t *testing.T) {
	a := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	b := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	if !a.Equal(b) {
		t.Error("identical graphs not Equal")
	}
	if !a.Equal(a) {
		t.Error("graph not Equal to itself")
	}
	c := FromEdges(3, [][2]NodeID{{0, 1}, {2, 1}})
	if a.Equal(c) {
		t.Error("different edges reported Equal")
	}
	d := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}})
	if a.Equal(d) {
		t.Error("different node counts reported Equal")
	}
	e := FromEdges(3, [][2]NodeID{{0, 1}})
	if a.Equal(e) {
		t.Error("different edge counts reported Equal")
	}
	var z1, z2 Graph
	if !z1.Equal(&z2) {
		t.Error("empty graphs not Equal")
	}
}
