package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the decoders: arbitrary input must never panic, and
// anything that decodes must satisfy the graph invariants. Run the
// seeds as normal tests, or explore with `go test -fuzz=FuzzReadBinary`.

func FuzzReadBinary(f *testing.F) {
	// Seeds: a valid encoding, truncations, and corruptions.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {4, 0}})); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SMGR"))
	f.Add([]byte("SMGR\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph violates invariants: %v", err)
		}
		// Round trip: re-encoding and re-decoding must be stable.
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("n 3\n0 1\n2 1\n")
	f.Add("n 0\n")
	f.Add("")
	f.Add("n 2\n0 9\n")
	f.Add("# comment\nn 1\n")
	f.Add("n 4294967295\n0 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Guard against adversarial header sizes exhausting memory.
		if len(data) > 1<<16 {
			return
		}
		if strings.Contains(data, "n 4294967295") || strings.Contains(data, "n 99999999") {
			return // builder legitimately allocates per header
		}
		g, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph violates invariants: %v", err)
		}
	})
}

func FuzzHostOf(f *testing.F) {
	f.Add("http://www.example.com/path")
	f.Add("EXAMPLE.com:8080")
	f.Add("http://user@host.org./x")
	f.Add("")
	f.Add("://:")
	f.Add("a@b@c:99:")
	f.Fuzz(func(t *testing.T, url string) {
		host := HostOf(url)
		// The host never contains a path separator and is lower-case.
		if strings.ContainsAny(host, "/") {
			t.Fatalf("HostOf(%q) = %q contains a slash", url, host)
		}
		if host != strings.ToLower(host) {
			t.Fatalf("HostOf(%q) = %q not lower-cased", url, host)
		}
		// Idempotence: extracting again changes nothing.
		if again := HostOf(host); again != host && !strings.Contains(host, ":") {
			t.Fatalf("HostOf not idempotent: %q -> %q -> %q", url, host, again)
		}
	})
}
