package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the decoders: arbitrary input must never panic, and
// anything that decodes must satisfy the graph invariants. Run the
// seeds as normal tests, or explore with `go test -fuzz=FuzzReadBinary`.

func FuzzReadBinary(f *testing.F) {
	// Seeds: a valid encoding, truncations, and corruptions.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {4, 0}})); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SMGR"))
	f.Add([]byte("SMGR\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph violates invariants: %v", err)
		}
		// Round trip: re-encoding and re-decoding must be stable.
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("n 3\n0 1\n2 1\n")
	f.Add("n 0\n")
	f.Add("")
	f.Add("n 2\n0 9\n")
	f.Add("# comment\nn 1\n")
	f.Add("n 4294967295\n0 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Guard against adversarial header sizes exhausting memory.
		if len(data) > 1<<16 {
			return
		}
		if strings.Contains(data, "n 4294967295") || strings.Contains(data, "n 99999999") {
			return // builder legitimately allocates per header
		}
		g, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph violates invariants: %v", err)
		}
	})
}

func FuzzCollapseToHosts(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 1, 2}, "http://a.com/x\nhttp://b.org/y\nhttp://a.com/z")
	f.Add(uint8(2), []byte{0, 1}, "a.com\n")
	f.Add(uint8(1), []byte{}, "")
	f.Add(uint8(4), []byte{0, 0, 1, 3, 3, 1}, "X.COM:80\nx.com.\nuser@x.com/p\n://:")
	f.Fuzz(func(t *testing.T, n uint8, edgeBytes []byte, urlBlob string) {
		nodes := int(n)
		var edges [][2]NodeID
		for i := 0; i+1 < len(edgeBytes) && nodes > 0; i += 2 {
			edges = append(edges, [2]NodeID{
				NodeID(int(edgeBytes[i]) % nodes),
				NodeID(int(edgeBytes[i+1]) % nodes),
			})
		}
		g := FromEdges(nodes, edges)
		// URLs: one per line, padded with a synthetic host per missing
		// page and truncated to the page count, so both the
		// length-mismatch error path and the collapse path are fuzzed.
		urls := strings.Split(urlBlob, "\n")
		if len(urls) > nodes {
			urls = urls[:nodes]
		}
		hg, err := CollapseToHosts(g, urls)
		if err != nil {
			return // mismatched lengths or empty hosts reject cleanly
		}
		if err := hg.Graph.Validate(); err != nil {
			t.Fatalf("collapsed graph violates invariants: %v", err)
		}
		if len(hg.Names) != hg.Graph.NumNodes() {
			t.Fatalf("%d names for %d hosts", len(hg.Names), hg.Graph.NumNodes())
		}
		for i, name := range hg.Names {
			if name == "" {
				t.Fatalf("host %d has empty name", i)
			}
			id, ok := hg.NodeByName(name)
			if !ok || id != NodeID(i) {
				t.Fatalf("NodeByName(%q) = %d,%v; want %d", name, id, ok, i)
			}
		}
		// Host count never exceeds page count; collapsing is surjective.
		if hg.Graph.NumNodes() > g.NumNodes() {
			t.Fatalf("collapse grew the graph: %d hosts from %d pages", hg.Graph.NumNodes(), g.NumNodes())
		}
	})
}

func FuzzHostOf(f *testing.F) {
	f.Add("http://www.example.com/path")
	f.Add("EXAMPLE.com:8080")
	f.Add("http://user@host.org./x")
	f.Add("")
	f.Add("://:")
	f.Add("a@b@c:99:")
	f.Fuzz(func(t *testing.T, url string) {
		host := HostOf(url)
		// The host never contains a path separator and is lower-case.
		if strings.ContainsAny(host, "/") {
			t.Fatalf("HostOf(%q) = %q contains a slash", url, host)
		}
		if host != strings.ToLower(host) {
			t.Fatalf("HostOf(%q) = %q not lower-cased", url, host)
		}
		// Idempotence: extracting again changes nothing.
		if again := HostOf(host); again != host && !strings.Contains(host, ":") {
			t.Fatalf("HostOf not idempotent: %q -> %q -> %q", url, host, again)
		}
	})
}
