package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReachableFrom(t *testing.T) {
	// 0 → 1 → 2, 3 → 1, 4 isolated.
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {3, 1}})
	mask := ReachableFrom(g, []NodeID{0})
	want := []bool{true, true, true, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("reachable[%d] = %v, want %v", i, mask[i], want[i])
		}
	}
	if CountReachable(mask) != 3 {
		t.Errorf("CountReachable = %d, want 3", CountReachable(mask))
	}
	// Duplicate seeds must not double-count.
	if got := CountReachable(ReachableFrom(g, []NodeID{0, 0, 3})); got != 4 {
		t.Errorf("multi-seed reachable = %d, want 4", got)
	}
}

func TestSCCSimple(t *testing.T) {
	// Two 2-cycles joined by a one-way edge, plus a singleton.
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}})
	comp, count := StronglyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("%d components, want 3", count)
	}
	if comp[0] != comp[1] {
		t.Error("0 and 1 must share a component")
	}
	if comp[2] != comp[3] {
		t.Error("2 and 3 must share a component")
	}
	if comp[0] == comp[2] || comp[0] == comp[4] || comp[2] == comp[4] {
		t.Error("distinct components merged")
	}
	// Reverse topological numbering: {2,3} is downstream of {0,1}, so
	// its component ID must be smaller.
	if comp[2] >= comp[0] {
		t.Errorf("downstream component %d not numbered before upstream %d", comp[2], comp[0])
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan's goroutine
	// stack; the iterative version must handle it.
	const n = 200000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.Build()
	_, count := StronglyConnectedComponents(g)
	if count != n {
		t.Fatalf("%d components on an acyclic path of %d nodes", count, n)
	}
}

// TestSCCProperty: x and y share a component iff they reach each other.
func TestSCCProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		comp, _ := StronglyConnectedComponents(g)
		for x := 0; x < n; x++ {
			fromX := ReachableFrom(g, []NodeID{NodeID(x)})
			for y := 0; y < n; y++ {
				fromY := ReachableFrom(g, []NodeID{NodeID(y)})
				mutual := fromX[y] && fromY[x]
				if mutual != (comp[x] == comp[y]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(6)
	if !u.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if u.Union(1, 0) {
		t.Error("repeat union reported a merge")
	}
	u.Union(2, 3)
	u.Union(1, 3)
	if u.Find(0) != u.Find(2) {
		t.Error("transitive union failed")
	}
	if u.Find(4) == u.Find(0) || u.Find(4) == u.Find(5) {
		t.Error("singletons merged spuriously")
	}
}

func TestClusterInduced(t *testing.T) {
	// Members {0,1,2} form a chain; {4,5} a pair; 7 alone; node 3 is
	// connected to 2 but is NOT a member, so it must not bridge.
	g := FromEdges(8, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {6, 7}})
	clusters := ClusterInduced(g, []NodeID{0, 1, 2, 4, 5, 7})
	if len(clusters) != 3 {
		t.Fatalf("%d clusters, want 3: %v", len(clusters), clusters)
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 2 || len(clusters[2]) != 1 {
		t.Errorf("cluster sizes %d/%d/%d, want 3/2/1", len(clusters[0]), len(clusters[1]), len(clusters[2]))
	}
	seen := map[NodeID]bool{}
	for _, c := range clusters {
		for _, x := range c {
			if seen[x] {
				t.Fatalf("node %d in two clusters", x)
			}
			seen[x] = true
		}
	}
}

func TestClusterInducedBothDirections(t *testing.T) {
	// Edge direction must not matter for clustering: 1 → 0 groups
	// {0, 1} even though 0 has no outlink to 1.
	g := FromEdges(3, [][2]NodeID{{1, 0}})
	clusters := ClusterInduced(g, []NodeID{0, 1, 2})
	if len(clusters) != 2 || len(clusters[0]) != 2 {
		t.Errorf("clusters = %v, want {0,1} and {2}", clusters)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	// 0→1, 2→1 form one weak component; 3↔4 another; 5 isolated.
	g := FromEdges(6, [][2]NodeID{{0, 1}, {2, 1}, {3, 4}, {4, 3}})
	comp, count, largest := WeaklyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("%d weak components, want 3", count)
	}
	if largest != 3 {
		t.Fatalf("largest component %d, want 3", largest)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("{0,1,2} not one weak component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("component assignment wrong")
	}
}

// TestWCCRefinesSCC: strongly connected nodes are always weakly
// connected.
func TestWCCRefinesSCC(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		scc, _ := StronglyConnectedComponents(g)
		wcc, _, _ := WeaklyConnectedComponents(g)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if scc[x] == scc[y] && wcc[x] != wcc[y] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
