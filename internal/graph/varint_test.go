package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"
)

func randIncreasing(rng *rand.Rand, n, maxDeg int) []NodeID {
	deg := rng.Intn(maxDeg + 1)
	if deg > n {
		deg = n
	}
	seen := make(map[NodeID]bool, deg)
	for len(seen) < deg {
		seen[NodeID(rng.Intn(n))] = true
	}
	list := make([]NodeID, 0, deg)
	for x := range seen {
		list = append(list, x)
	}
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j] < list[j-1]; j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	return list
}

func TestGapListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(1000)
		list := randIncreasing(rng, n, 40)
		enc := AppendGapList(nil, list)

		// Slice decoder.
		got, pos, err := DecodeGapList(nil, enc, 0, len(list), uint64(n))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if pos != len(enc) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, pos, len(enc))
		}
		if len(got) != len(list) {
			t.Fatalf("trial %d: got %d elements, want %d", trial, len(got), len(list))
		}
		for i := range list {
			if got[i] != list[i] {
				t.Fatalf("trial %d: element %d = %d, want %d", trial, i, got[i], list[i])
			}
		}

		// Streaming decoder must agree byte for byte.
		d := NewGapDecoder(bytes.NewReader(enc), uint64(n))
		d.Reset(len(list))
		for i := range list {
			x, err := d.Next()
			if err != nil {
				t.Fatalf("trial %d: stream element %d: %v", trial, i, err)
			}
			if x != list[i] {
				t.Fatalf("trial %d: stream element %d = %d, want %d", trial, i, x, list[i])
			}
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("trial %d: decoder past end returned %v, want io.EOF", trial, err)
		}
	}
}

func TestGapListConcatenated(t *testing.T) {
	// Several lists back to back in one buffer, as the blocked layout
	// and the disk format both store them.
	lists := [][]NodeID{{3, 9, 10}, {0}, {}, {5, 6, 7, 2000}}
	var enc []byte
	for _, l := range lists {
		enc = AppendGapList(enc, l)
	}
	pos := 0
	for i, l := range lists {
		var got []NodeID
		var err error
		got, pos, err = DecodeGapList(got, enc, pos, len(l), 1<<32)
		if err != nil {
			t.Fatalf("list %d: %v", i, err)
		}
		for j := range l {
			if got[j] != l[j] {
				t.Fatalf("list %d element %d = %d, want %d", i, j, got[j], l[j])
			}
		}
	}
	if pos != len(enc) {
		t.Fatalf("consumed %d of %d bytes", pos, len(enc))
	}
}

func TestGapListTruncated(t *testing.T) {
	list := []NodeID{1, 5, 130, 100000}
	enc := AppendGapList(nil, list)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeGapList(nil, enc[:cut], 0, len(list), 1<<32); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
		d := NewGapDecoder(bytes.NewReader(enc[:cut]), 1<<32)
		d.Reset(len(list))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if err == io.EOF && cut > 0 {
			// io.EOF is only acceptable for the empty prefix, where the
			// very first read hits a clean end of stream.
			t.Fatalf("truncation at %d bytes surfaced as clean io.EOF mid-list", cut)
		}
	}
}

func TestGapListRejectsMalformed(t *testing.T) {
	// A zero gap after the first element would mean a duplicate
	// neighbor; an overlong value must trip the range check.
	zeroGap := []byte{5, 0}
	if _, _, err := DecodeGapList(nil, zeroGap, 0, 2, 1<<32); err == nil {
		t.Fatal("zero gap decoded without error")
	}
	huge := binary.AppendUvarint(nil, math.MaxUint64)
	if _, _, err := DecodeGapList(nil, huge, 0, 1, 1<<32); err == nil {
		t.Fatal("2^64-1 decoded as a node ID")
	}
	outOfRange := binary.AppendUvarint(nil, 10)
	if _, _, err := DecodeGapList(nil, outOfRange, 0, 1, 10); err == nil {
		t.Fatal("node ID 10 accepted with bound n=10")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendGapList accepted a non-increasing list")
		}
	}()
	AppendGapList(nil, []NodeID{4, 4})
}

// FuzzGapList feeds arbitrary bytes to both decoders: they must agree
// with each other, never panic, and anything that decodes must
// re-encode to the identical prefix (round-trip stability).
func FuzzGapList(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add(AppendGapList(nil, []NodeID{3, 9, 10}), uint16(3))
	f.Add(AppendGapList(nil, []NodeID{0, 1, 2, 3}), uint16(4))
	f.Add([]byte{0x80}, uint16(1))                     // truncated varint
	f.Add([]byte{5, 0, 1}, uint16(3))                  // zero gap
	f.Add(binary.AppendUvarint(nil, 1<<40), uint16(1)) // out of range
	f.Fuzz(func(t *testing.T, data []byte, degRaw uint16) {
		deg := int(degRaw % 256)
		const n = uint64(1) << 32
		list, pos, err := DecodeGapList(nil, data, 0, deg, n)

		d := NewGapDecoder(bytes.NewReader(data), n)
		d.Reset(deg)
		var streamed []NodeID
		var serr error
		for {
			x, e := d.Next()
			if e != nil {
				if e != io.EOF {
					serr = e
				}
				break
			}
			streamed = append(streamed, x)
		}

		if err != nil {
			if serr == nil && len(streamed) == deg {
				t.Fatalf("slice decoder failed (%v) but stream decoded %d elements", err, deg)
			}
			return
		}
		if serr != nil || len(streamed) != len(list) {
			t.Fatalf("stream decoder disagrees: err=%v, %d vs %d elements", serr, len(streamed), len(list))
		}
		for i := range list {
			if streamed[i] != list[i] {
				t.Fatalf("element %d: stream %d vs slice %d", i, streamed[i], list[i])
			}
			if i > 0 && list[i] <= list[i-1] {
				t.Fatalf("decoded list not strictly increasing at %d", i)
			}
		}
		// Round trip: re-encoding (canonically) and re-decoding must
		// reproduce the list, even when the input used padded varints.
		re := AppendGapList(nil, list)
		back, _, err := DecodeGapList(nil, re, 0, deg, n)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		for i := range list {
			if back[i] != list[i] {
				t.Fatalf("round trip changed element %d: %d vs %d", i, back[i], list[i])
			}
		}
		_ = pos
	})
}
