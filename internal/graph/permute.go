package graph

import (
	"fmt"
	"slices"
	"sort"
)

// DegreeOrder returns a relabeling of the graph ordered by descending
// out-degree, ties broken by ascending original ID. perm maps original
// IDs to new IDs (perm[orig] = new) and inv is its inverse
// (inv[new] = orig).
//
// Under this order the high-out-degree hosts — the ones whose scores
// are read over and over during an in-neighbor sweep, since each
// appears in many in-neighbor lists — occupy the lowest new IDs, so
// the hot entries of a score vector are packed into a few cache lines
// instead of being scattered across the whole array. Sorted adjacency
// over the new IDs also gap-encodes smaller (see AppendGapList).
func (g *Graph) DegreeOrder() (perm, inv []NodeID) {
	n := g.n
	inv = make([]NodeID, n)
	for i := range inv {
		inv[i] = NodeID(i)
	}
	sort.Slice(inv, func(a, b int) bool {
		da, db := g.OutDegree(inv[a]), g.OutDegree(inv[b])
		if da != db {
			return da > db
		}
		return inv[a] < inv[b]
	})
	perm = make([]NodeID, n)
	for newID, orig := range inv {
		perm[orig] = NodeID(newID)
	}
	return perm, inv
}

// Permute returns the graph relabeled by perm: edge (x, y) becomes
// (perm[x], perm[y]). perm must be a permutation of 0..n-1; degrees
// are preserved node-for-node under the relabeling.
func (g *Graph) Permute(perm []NodeID) (*Graph, error) {
	n := g.n
	if len(perm) != n {
		return nil, fmt.Errorf("graph: Permute got %d labels for %d nodes", len(perm), n)
	}
	if n == 0 {
		return &Graph{}, nil
	}
	seen := make([]bool, n)
	for orig, p := range perm {
		if int(p) >= n {
			return nil, fmt.Errorf("graph: Permute label %d for node %d outside [0,%d)", p, orig, n)
		}
		if seen[p] {
			return nil, fmt.Errorf("graph: Permute label %d assigned twice", p)
		}
		seen[p] = true
	}
	inv := make([]NodeID, n)
	for orig, p := range perm {
		inv[p] = NodeID(orig)
	}
	outStart := make([]int64, n+1)
	for p := 0; p < n; p++ {
		outStart[p+1] = outStart[p] + int64(g.OutDegree(inv[p]))
	}
	outAdj := make([]NodeID, outStart[n])
	for p := 0; p < n; p++ {
		row := outAdj[outStart[p]:outStart[p+1]]
		for i, y := range g.OutNeighbors(inv[p]) {
			row[i] = perm[y]
		}
		slices.Sort(row)
	}
	return FromCSR(outStart, outAdj)
}
