// Core coverage: the Figure 5 lesson of the paper, replayed on a
// synthetic host graph. Detection precision is compared for the full
// good core, random sub-cores of 10%, 1%, and 0.1%, and a core made of
// a single country's educational hosts — which loses to a random core
// 19 times smaller, because breadth of coverage matters more than
// size.
//
//	go run ./examples/corecoverage
package main

import (
	"fmt"
	"log"

	"spammass"
	"spammass/internal/goodcore"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

func main() {
	const hosts = 100000
	fmt.Printf("generating a %d-host synthetic web...\n", hosts)
	w, err := spammass.GenerateWorld(spammass.DefaultWorldConfig(hosts))
	if err != nil {
		log.Fatal(err)
	}
	full, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		log.Fatal(err)
	}

	solver := pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300}
	p, err := pagerank.Jacobi(w.Graph, pagerank.UniformJump(w.Graph.NumNodes()), solver)
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(name string, core []spammass.NodeID) {
		wJump := pagerank.ScaledCoreJump(w.Graph.NumNodes(), core, 0.85)
		pc, err := pagerank.Jacobi(w.Graph, wJump, solver)
		if err != nil {
			log.Fatal(err)
		}
		est := mass.Derive(p.Scores, pc.Scores, 0.85)
		cands := mass.Detect(est, mass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 10})
		spam := 0
		for _, c := range cands {
			if w.IsSpam(c.Node) || w.Info[c.Node].Anomalous {
				spam++
			}
		}
		precision := 0.0
		if len(cands) > 0 {
			precision = float64(spam) / float64(len(cands))
		}
		fmt.Printf("%-14s %7d hosts   candidates %5d   precision %5.1f%%\n",
			name, len(core), len(cands), 100*precision)
	}

	fmt.Println("\ndetection at tau=0.9, rho=10 (precision counts known anomalies as hits):")
	evaluate("full core", full.Nodes)
	for _, frac := range []float64{0.10, 0.01, 0.001} {
		sub, err := goodcore.Subsample(full, frac, 7)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(fmt.Sprintf("%.1f%% core", 100*frac), sub.Nodes)
	}
	it, err := goodcore.CountryEduCore(w.Names, "it")
	if err != nil {
		log.Fatal(err)
	}
	evaluate(".it edu core", it.Nodes)
	// The cleanest statement of the paper's lesson: a random core of
	// the SAME size as the Italian one, but spread across the whole
	// good population, detects spam better.
	sameSize, err := goodcore.Subsample(full, float64(len(it.Nodes))/float64(full.Size()), 77)
	if err != nil {
		log.Fatal(err)
	}
	evaluate("random=|.it|", sameSize.Nodes)

	fmt.Println("\nthe .it-only core covers one national web, so every host endorsed")
	fmt.Println("only by the rest of the world looks spammy: breadth beats size.")
}
