// Temporal churn: Section 3.4 argues a good core is the right prior
// because it ages well — "spam nodes come and go on the web", so a
// black list goes stale while universities, agencies, and directories
// stay put. This example evolves a synthetic web one spam generation
// and watches both lists age.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"

	"spammass"
	"spammass/internal/goodcore"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

func main() {
	const hosts = 60000
	fmt.Printf("t0: generating a %d-host web...\n", hosts)
	w0, err := spammass.GenerateWorld(spammass.DefaultWorldConfig(hosts))
	if err != nil {
		log.Fatal(err)
	}
	core, err := goodcore.Assemble(w0.Names, w0.DirectoryMembers)
	if err != nil {
		log.Fatal(err)
	}
	solver := pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300}
	opts := spammass.EstimateOptions{Solver: solver, Gamma: 0.85}

	est0, err := spammass.Estimate(w0.Graph, core.Nodes, opts)
	if err != nil {
		log.Fatal(err)
	}
	// The abuse team compiles a black list from today's detections.
	var blacklist []spammass.NodeID
	for _, c := range spammass.Detect(est0, spammass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 10}) {
		if w0.IsSpam(c.Node) {
			blacklist = append(blacklist, c.Node)
		}
	}
	fmt.Printf("t0: black list of %d confirmed spam hosts; good core of %d hosts\n",
		len(blacklist), core.Size())

	// A spam generation passes: farms abandoned, new ones registered.
	w1, err := spammass.EvolveSpam(w0, 99)
	if err != nil {
		log.Fatal(err)
	}
	est1, err := spammass.Estimate(w1.Graph, core.Nodes, opts)
	if err != nil {
		log.Fatal(err)
	}

	// How did the two priors age?
	staleSpam := 0
	for _, x := range blacklist {
		if w1.IsSpam(x) {
			staleSpam++
		}
	}
	coreGood := 0
	for _, x := range core.Nodes {
		if !w1.IsSpam(x) {
			coreGood++
		}
	}
	fmt.Printf("\nt1 (one spam generation later):\n")
	fmt.Printf("  black list still pointing at live spam: %d of %d (%.0f%%)\n",
		staleSpam, len(blacklist), 100*float64(staleSpam)/float64(len(blacklist)))
	fmt.Printf("  good core still good:                   %d of %d (%.0f%%)\n",
		coreGood, core.Size(), 100*float64(coreGood)/float64(core.Size()))

	recall := func(w *spammass.World, est *spammass.Estimates) float64 {
		targets, hits := 0, 0
		for _, f := range w.Farms {
			if est.ScaledPageRank(f.Target) < 10 {
				continue
			}
			targets++
			if est.Rel[f.Target] >= 0.75 {
				hits++
			}
		}
		if targets == 0 {
			return 0
		}
		return float64(hits) / float64(targets)
	}
	fmt.Printf("  aged-core detection of the NEW farms:   recall %.2f (t0 was %.2f)\n",
		recall(w1, est1), recall(w0, est0))

	// The stale black list, used as a mass estimator, sees nothing.
	black, err := mass.EstimateFromBlacklist(w1.Graph, blacklist, 0.15, mass.Options{Solver: solver})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stale-black-list detection of new farms: recall %.2f\n", recall(w1, black))
	fmt.Println("\nthe asymmetry is Section 3.4's argument for building the method on a good core")
}
