// Expired domains: the paper's designed false-negative class
// (Section 4.4, observation 2). A spammer buys a lapsed but once
// reputable domain and inherits its good inlinks; since the PageRank
// of such a host is contributed by good nodes, white-list spam mass
// cannot flag it. Combining in black-list evidence (Section 3.4's
// M̂ = PR(v^Ṽ⁻)) recovers the detection.
//
//	go run ./examples/expireddomains
package main

import (
	"fmt"
	"log"

	"spammass"
)

func main() {
	b := spammass.NewBuilder(0)

	// A reputable web of 40 sites around two hubs.
	hubA, hubB := b.AddNode(), b.AddNode()
	var good []spammass.NodeID
	good = append(good, hubA, hubB)
	for i := 0; i < 40; i++ {
		site := b.AddNode()
		good = append(good, site)
		if i%2 == 0 {
			b.AddEdge(site, hubA)
			b.AddEdge(hubA, site)
		} else {
			b.AddEdge(site, hubB)
			b.AddEdge(hubB, site)
		}
	}

	// The expired domain: fifteen reputable sites still link to it
	// from the era when it hosted a popular open-source project. The
	// new owner points it at a classic spam farm.
	expired := b.AddNode()
	for i := 2; i < 17; i++ {
		b.AddEdge(good[i], expired)
	}
	farmTarget := b.AddNode()
	b.AddEdge(expired, farmTarget)
	var boosters []spammass.NodeID
	for i := 0; i < 25; i++ {
		booster := b.AddNode()
		boosters = append(boosters, booster)
		b.AddEdge(booster, farmTarget)
	}
	g := b.Build()

	opts := spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()}
	white, err := spammass.Estimate(g, good, opts)
	if err != nil {
		log.Fatal(err)
	}
	scale := float64(g.NumNodes()) / (1 - 0.85)
	fmt.Println("white-list estimate (good core only):")
	fmt.Printf("  expired domain: scaled PR %6.2f, relative mass %6.3f  <- invisible\n",
		white.P[expired]*scale, white.Rel[expired])
	fmt.Printf("  farm target:    scaled PR %6.2f, relative mass %6.3f\n",
		white.P[farmTarget]*scale, white.Rel[farmTarget])

	detect := func(name string, est *spammass.Estimates) {
		cands := spammass.Detect(est, spammass.DetectConfig{
			RelMassThreshold:        0.5,
			ScaledPageRankThreshold: 2,
		})
		fmt.Printf("%s flags:", name)
		for _, c := range cands {
			switch c.Node {
			case expired:
				fmt.Printf(" expired-domain")
			case farmTarget:
				fmt.Printf(" farm-target")
			default:
				fmt.Printf(" node%d", c.Node)
			}
		}
		fmt.Println()
	}
	detect("\nwhite-list detection", white)

	// The abuse team reported two of the farm's boosters. Even this
	// tiny black list propagates: the farm target and — through its
	// outlink — everything the expired domain boosts gains measurable
	// black mass, and the combined estimator flags both.
	black, err := spammass.EstimateFromBlacklist(g, boosters[:2], 0.15, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblack-list estimate from 2 known boosters:\n")
	fmt.Printf("  expired domain: black relative mass %6.3f\n", black.Rel[expired])
	fmt.Printf("  farm target:    black relative mass %6.3f\n", black.Rel[farmTarget])

	// Note what a plain average (M̃+M̂)/2 would do: the black list
	// knows only a tiny slice of the spam world, so the average
	// halves the farm target's white signal. Section 3.4's advice for
	// lists of very different coverage is a weighted combination; the
	// practical rule below ORs the two sources of evidence instead.
	combined, err := spammass.CombineEstimates(white, black)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain average (M~+M^)/2 on the farm target: %.3f (diluted below the 0.5 threshold)\n",
		combined.Rel[farmTarget])
	flagged := map[spammass.NodeID]bool{}
	for _, c := range spammass.Detect(white, spammass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 2}) {
		flagged[c.Node] = true
	}
	// Black-list evidence adds anything measurably boosted by the
	// known spam nodes, however small its white mass.
	for x := 0; x < g.NumNodes(); x++ {
		if black.Rel[x] > 0.2 && white.P[x]*scale >= 2 {
			flagged[spammass.NodeID(x)] = true
		}
	}

	// For the expired domain itself, black mass cannot flow in (no
	// walks lead from boosters to it), so the last signal is
	// different: its PageRank flows INTO flagged hosts.
	fmt.Println("\nfeeder sweep: hosts with notable PageRank pointing at flagged hosts:")
	for x := 0; x < g.NumNodes(); x++ {
		id := spammass.NodeID(x)
		if flagged[id] || white.P[id]*scale < 2 {
			continue
		}
		for _, y := range g.OutNeighbors(id) {
			if flagged[y] {
				fmt.Printf("  node %d feeds flagged node %d", id, y)
				if id == expired {
					fmt.Printf("  <- the expired domain, caught")
				}
				fmt.Println()
				break
			}
		}
	}
}
