// Quickstart: build a small web graph by hand, estimate spam mass
// from a known-good core, and run the detection algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spammass"
)

func main() {
	// A miniature web: a reputable cluster (nodes 0-2) endorsing each
	// other and a news site (node 4); a spam farm with ten boosting
	// nodes (5-14) all pointing at the farm's target (node 3). The
	// target also managed to sneak one stray link from node 0 (say, an
	// unmoderated comment section).
	b := spammass.NewBuilder(15)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 4)
	b.AddEdge(1, 4)
	b.AddEdge(0, 3) // the stray link
	for x := spammass.NodeID(5); x <= 14; x++ {
		b.AddEdge(x, 3)
	}
	g := b.Build()

	// Regular PageRank: note the farm target ranks at the very top —
	// exactly the kind of successful link spam the paper goes after.
	pr, err := spammass.PageRank(g, spammass.DefaultSolverConfig())
	if err != nil {
		log.Fatal(err)
	}
	scale := float64(g.NumNodes()) / (1 - 0.85)
	fmt.Println("scaled PageRank (node: score):")
	for x := 0; x < g.NumNodes(); x++ {
		if pr.Scores[x]*scale >= 1.5 {
			fmt.Printf("  %2d: %6.2f\n", x, pr.Scores[x]*scale)
		}
	}

	// Estimate spam mass with nodes 0-2 as the good core. In a search
	// engine this core would be a web directory plus governmental and
	// educational hosts; here we just know who the good guys are.
	est, err := spammass.Estimate(g, []spammass.NodeID{0, 1, 2}, spammass.EstimateOptions{
		Solver: spammass.DefaultSolverConfig(),
		// Gamma 0 = plain core jump; fine when the core covers all
		// good nodes, as in this toy graph.
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelative spam mass:")
	for x := 0; x < g.NumNodes(); x++ {
		fmt.Printf("  %2d: %6.2f\n", x, est.Rel[x])
	}
	fmt.Println("(node 4's nonzero mass is the paper's Section 3.5 effect in miniature:")
	fmt.Println(" its own random jump lies outside the 3-node core, so the unscaled")
	fmt.Println(" estimate overstates its mass — harmlessly below the threshold here)")

	// Algorithm 2: flag nodes with high PageRank and high relative
	// mass. Only the farm target qualifies; the news site (4) has high
	// PageRank but all of it comes from the good core.
	candidates := spammass.Detect(est, spammass.DetectConfig{
		RelMassThreshold:        0.5,
		ScaledPageRankThreshold: 2,
	})
	fmt.Println("\nspam candidates:")
	for _, c := range candidates {
		fmt.Printf("  %v\n", c)
	}
}
