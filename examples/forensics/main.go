// Forensics: detection is only the first half of a spam-fighting
// pipeline — an abuse team then needs to know *why* a host was flagged
// and *who else* is involved. This example detects the targets on a
// synthetic web, extracts the boosting structure behind each (via the
// reverse PageRank contributions of Section 3.2), groups farms into
// alliances, and exonerates a false positive by showing its supporters
// are reputable.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"

	"spammass"
)

func main() {
	b := spammass.NewBuilder(0)

	// A reputable web: hub + 30 sites (the good core).
	hub := b.AddNode()
	var good []spammass.NodeID
	good = append(good, hub)
	for i := 0; i < 30; i++ {
		site := b.AddNode()
		good = append(good, site)
		b.AddEdge(site, hub)
		b.AddEdge(hub, site)
	}
	// A genuinely popular host, endorsed by reputable sites that
	// happen to sit OUTSIDE the good core (the core below is only the
	// hub and the first ten sites) — the classic honest false
	// positive of an incomplete core.
	popular := b.AddNode()
	for i := 16; i <= 30; i++ {
		b.AddEdge(good[i], popular)
	}

	// Two allied farms and one independent farm.
	farm := func(k int) spammass.NodeID {
		target := b.AddNode()
		for i := 0; i < k; i++ {
			booster := b.AddNode()
			b.AddEdge(booster, target)
		}
		return target
	}
	ally1, ally2 := farm(25), farm(25)
	b.AddEdge(ally1, ally2)
	b.AddEdge(ally2, ally1)
	solo := farm(40)

	g := b.Build()
	core := good[:11]
	est, err := spammass.Estimate(g, core, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		log.Fatal(err)
	}

	// Detect with a deliberately loose threshold so the popular good
	// host sneaks in as a false positive to exonerate.
	cands := spammass.Detect(est, spammass.DetectConfig{RelMassThreshold: 0.3, ScaledPageRankThreshold: 8})
	names := map[spammass.NodeID]string{ally1: "ally-1", ally2: "ally-2", solo: "solo-farm", popular: "popular-site", hub: "core-hub"}
	fmt.Println("candidates:")
	for _, c := range cands {
		fmt.Printf("  %-12s scaled PR %7.2f  m~ %.3f\n", names[c.Node], c.ScaledPageRank, c.RelMass)
	}

	farms, alliances, err := spammass.ExtractFarms(g, est, cands, spammass.DefaultForensicsConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nforensics per candidate:")
	for _, f := range farms {
		fmt.Printf("  %-12s %3d supporters analyzed, booster share %.2f", names[f.Target], len(f.Members), f.BoosterShare)
		if f.BoosterShare < 0.3 {
			fmt.Printf("  <- supporters are reputable: exonerated")
		}
		fmt.Println()
	}

	fmt.Println("\nalliances (targets whose farms are linked):")
	for _, a := range alliances {
		if len(a.Targets) < 2 {
			continue
		}
		fmt.Printf("  group of %d:", len(a.Targets))
		for _, t := range a.Targets {
			fmt.Printf(" %s", names[t])
		}
		fmt.Println()
	}

	// Drill into one target: who exactly boosts it?
	sup, px, err := spammass.Supporters(g, solo, spammass.DefaultSolverConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	scale := float64(g.NumNodes()) / (1 - 0.85)
	fmt.Printf("\ntop supporters of solo-farm (scaled PR %.2f):\n", px*scale)
	for _, s := range sup {
		fmt.Printf("  node %-5d contributes %6.3f (%4.1f%% of the target's PageRank)\n",
			s.Node, s.Contribution*scale, 100*s.Share)
	}
	fmt.Println("(every significant supporter is a single-purpose boosting host:")
	fmt.Println(" the evidence an abuse team attaches to a takedown)")
}
