// Out-of-core: run the full mass-estimation pipeline with the graph's
// adjacency on disk — the regime of the paper's real deployment, where
// the page graph had billions of edges. Only the out-degree array and
// the score vectors stay in memory; each Jacobi iteration streams the
// in-neighbor lists from disk sequentially.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"spammass"
	"spammass/internal/goodcore"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

func main() {
	const hosts = 60000
	fmt.Printf("generating a %d-host synthetic web...\n", hosts)
	w, err := spammass.GenerateWorld(spammass.DefaultWorldConfig(hosts))
	if err != nil {
		log.Fatal(err)
	}
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "spammass-outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.smdg")
	if err := spammass.BuildDiskGraph(path, w.Graph); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk graph: %s (%.1f MB for %d edges)\n", path,
		float64(info.Size())/(1<<20), w.Graph.NumEdges())

	dg, err := spammass.OpenDiskGraph(path)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300}
	n := dg.NumNodes()

	p, err := dg.PageRank(pagerank.UniformJump(n), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regular PageRank:    %d streaming iterations\n", p.Iterations)
	pc, err := dg.PageRank(pagerank.ScaledCoreJump(n, core.Nodes, 0.85), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core-based PageRank: %d streaming iterations\n", pc.Iterations)

	est := mass.Derive(p.Scores, pc.Scores, 0.85)
	cands := mass.Detect(est, mass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 10})
	spam := 0
	for _, c := range cands {
		if w.IsSpam(c.Node) || w.Info[c.Node].Anomalous {
			spam++
		}
	}
	fmt.Printf("detection over the disk-resident graph: %d candidates, %.0f%% spam-or-known-anomaly\n",
		len(cands), 100*float64(spam)/float64(len(cands)))

	// Cross-check a few scores against the in-memory solver.
	mem, err := spammass.PageRank(w.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for x := range mem.Scores {
		d := mem.Scores[x] - p.Scores[x]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max difference vs in-memory solver: %.2e (identical fixpoint)\n", worst)
}
