// Spam-farm anatomy: build the farm topologies of Section 2.3 of the
// paper — the single-target farm at several sizes, ring-interlinked
// boosters, a two-farm alliance, and a honey-pot farm — and show how
// each shapes the target's PageRank and spam-mass signature.
//
//	go run ./examples/spamfarm
package main

import (
	"fmt"
	"log"

	"spammass"
)

const damping = 0.85

// farm appends a target plus k boosters to the builder and returns the
// target. If ring is set the boosters are interlinked in a cycle.
func farm(b *spammass.Builder, k int, ring bool) spammass.NodeID {
	target := b.AddNode()
	boosters := make([]spammass.NodeID, k)
	for i := range boosters {
		boosters[i] = b.AddNode()
		b.AddEdge(boosters[i], target)
	}
	if ring {
		for i := range boosters {
			b.AddEdge(boosters[i], boosters[(i+1)%k])
		}
	}
	return target
}

func main() {
	b := spammass.NewBuilder(0)

	// A small reputable web that will serve as the good core: a hub
	// and twenty sites pointing at it and each other.
	hub := b.AddNode()
	var good []spammass.NodeID
	good = append(good, hub)
	for i := 0; i < 20; i++ {
		site := b.AddNode()
		good = append(good, site)
		b.AddEdge(site, hub)
		b.AddEdge(hub, site)
	}

	// Farm topologies.
	star10 := farm(b, 10, false)   // classic star, 10 boosters
	star100 := farm(b, 100, false) // heavy-weight star
	ring50 := farm(b, 50, true)    // ring-interlinked boosters

	// Alliance: two farms whose targets endorse each other (the
	// paper's reference [8], "Link spam alliances").
	ally1 := farm(b, 30, false)
	ally2 := farm(b, 30, false)
	b.AddEdge(ally1, ally2)
	b.AddEdge(ally2, ally1)

	// Honey pot: a farm whose target offers something genuinely
	// useful, harvesting stray links from three reputable sites.
	honey := farm(b, 30, false)
	for i := 1; i <= 3; i++ {
		b.AddEdge(good[i], honey)
	}

	g := b.Build()
	est, err := spammass.Estimate(g, good, spammass.EstimateOptions{
		Solver: spammass.DefaultSolverConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}

	scale := float64(g.NumNodes()) / (1 - damping)
	show := func(name string, x spammass.NodeID) {
		fmt.Printf("%-22s scaled PR %8.2f   relative mass %6.3f\n",
			name, est.P[x]*scale, est.Rel[x])
	}
	fmt.Println("farm target signatures (higher PR = more successful spam,")
	fmt.Println("relative mass near 1 = PageRank manufactured by the farm):")
	show("star, 10 boosters", star10)
	show("star, 100 boosters", star100)
	show("ring, 50 boosters", ring50)
	show("alliance member 1", ally1)
	show("alliance member 2", ally2)
	show("honey pot, 30+stray", honey)
	show("reputable hub", hub)

	// Detection: at τ = 0.9 every pure farm is caught; the honey pot's
	// stray links dilute its mass (the paper's Section 4.4 observation
	// about expired domains is the extreme version of this effect).
	fmt.Println("\ncandidates at tau=0.9, rho=5:")
	for _, c := range spammass.Detect(est, spammass.DetectConfig{
		RelMassThreshold:        0.9,
		ScaledPageRankThreshold: 5,
	}) {
		fmt.Printf("  %v\n", c)
	}

	// The Figure 1 closed form, replayed with the library: a target
	// with two good links and one boosted spam link flips to
	// spam-dominated PageRank at k = ceil(1/c) = 2 boosters.
	fmt.Println("\nFigure 1 closed form: spam contribution (c + kc^2) vs good (2c):")
	for _, k := range []int{1, 2, 3} {
		spamPart := damping + float64(k)*damping*damping
		fmt.Printf("  k=%d: spam %.3f vs good %.3f -> spam dominates: %v\n",
			k, spamPart, 2*damping, spamPart > 2*damping)
	}
}
