module spammass

go 1.22
