#!/bin/sh
# delta_smoke.sh — end-to-end smoke test for the incremental delta path.
#
# Generates a synthetic web graph plus one churn-generation delta file
# (genweb -churn 1), boots spamserver, POSTs the delta to /admin/delta
# with ?wait=1, and asserts the snapshot epoch advanced, the batch was
# counted, and served records carry the new epoch. Exits non-zero on
# any failed probe. Run via `make delta-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "delta-smoke: building binaries"
$GO build -o "$WORK/genweb" ./cmd/genweb
$GO build -o "$WORK/spamserver" ./cmd/spamserver

echo "delta-smoke: generating 10k-host graph with one churn generation"
"$WORK/genweb" -hosts 10000 -churn 1 -out "$WORK/web" >/dev/null
if [ ! -s "$WORK/web.delta.1" ]; then
    echo "delta-smoke: genweb -churn 1 wrote no delta file" >&2
    exit 1
fi

"$WORK/spamserver" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -graph "$WORK/web.graph" -names "$WORK/web.names" -core "$WORK/web.core" \
    2>"$WORK/server.log" &
SERVER_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "delta-smoke: server never bound" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
echo "delta-smoke: server up on $ADDR"

probe() {
    # probe <name> <url> [curl args...] — body must arrive with HTTP 200.
    name=$1
    url=$2
    shift 2
    if ! body=$(curl -sS --fail --max-time 30 "$@" "$url"); then
        echo "delta-smoke: $name probe failed ($url)" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    echo "delta-smoke: $name -> $body"
}

# expect <name> <pattern> — the last probe's body must contain pattern.
expect() {
    if ! echo "$body" | grep -q "$2"; then
        echo "delta-smoke: $1: expected $2 in: $body" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
}

probe status "http://$ADDR/admin/status"
expect "delta path wired" '"delta_enabled":true'
expect "initial epoch" '"epoch":1'

probe "delta apply" "http://$ADDR/admin/delta?wait=1" -X POST --data-binary "@$WORK/web.delta.1"
expect "delta applied" '"status":"delta applied"'
expect "epoch advanced" '"epoch":2'

probe status "http://$ADDR/admin/status"
expect "batch counted" '"delta_batches":1'
expect "published epoch" '"epoch":2'

# A served record must come from the post-delta generation.
HOST=$(head -1 "$WORK/web.names")
probe "host lookup" "http://$ADDR/v1/host/$HOST"
expect "record epoch" '"epoch":2'

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "delta-smoke: OK"
