#!/bin/sh
# obs_smoke.sh — end-to-end smoke test for the telemetry surface of
# cmd/spamserver.
#
# Boots spamserver with tracing, the metric recorder, and the drift
# watchdog enabled on an ephemeral port, then:
#   1. scrapes /metrics and validates it with promcheck (the strict
#      Prometheus text-format parser);
#   2. checks that a hot-path request carries X-Trace-Id/Traceparent;
#   3. forces a synchronous refresh and asserts /admin/timeseries grew
#      a new serve.snapshot_epoch point;
#   4. reads /admin/flightrecorder and /readyz?verbose.
# Exits non-zero on any failed probe. Run via `make obs-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building binaries"
$GO build -o "$WORK/genweb" ./cmd/genweb
$GO build -o "$WORK/spamserver" ./cmd/spamserver
$GO build -o "$WORK/promcheck" ./cmd/promcheck

echo "obs-smoke: generating 10k-host example graph"
"$WORK/genweb" -hosts 10000 -out "$WORK/web" >/dev/null

"$WORK/spamserver" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -graph "$WORK/web.graph" -names "$WORK/web.names" -core "$WORK/web.core" \
    -sample-interval 1s -flight-dir "$WORK/flight" \
    2>"$WORK/server.log" &
SERVER_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "obs-smoke: server never bound" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
echo "obs-smoke: server up on $ADDR"

fail() {
    echo "obs-smoke: $1" >&2
    cat "$WORK/server.log" >&2
    exit 1
}

# 1. /metrics must scrape and survive the strict parser.
curl -sS --fail --max-time 10 "http://$ADDR/metrics" >"$WORK/metrics.prom" \
    || fail "/metrics scrape failed"
"$WORK/promcheck" "$WORK/metrics.prom" || fail "/metrics is not valid Prometheus text format"
grep -q '^serve_requests_total' "$WORK/metrics.prom" \
    || fail "/metrics misses serve_requests_total"

# 2. Hot-path responses must carry trace headers.
HOST=$(head -1 "$WORK/web.names")
curl -sS --fail --max-time 10 -D "$WORK/headers" \
    "http://$ADDR/v1/host/$HOST" >/dev/null || fail "host lookup failed"
grep -qi '^x-trace-id: [0-9a-f]\{32\}' "$WORK/headers" \
    || fail "lookup response misses X-Trace-Id"
grep -qi '^traceparent: 00-' "$WORK/headers" \
    || fail "lookup response misses Traceparent"

# 3. A refresh must add a serve.snapshot_epoch point to the recorder.
before=$(curl -sS --fail --max-time 10 \
    "http://$ADDR/admin/timeseries?metric=serve.snapshot_epoch" \
    | grep -o '"time":' | wc -l) || fail "timeseries query failed"
curl -sS --fail --max-time 60 -X POST \
    "http://$ADDR/admin/refresh?wait=1" >/dev/null || fail "refresh failed"
after=$(curl -sS --fail --max-time 10 \
    "http://$ADDR/admin/timeseries?metric=serve.snapshot_epoch" \
    | grep -o '"time":' | wc -l) || fail "timeseries re-query failed"
if [ "$after" -le "$before" ]; then
    fail "refresh did not grow the serve.snapshot_epoch series ($before -> $after)"
fi
echo "obs-smoke: timeseries grew $before -> $after points across refresh"

# 4. Flight recorder and verbose readiness respond.
curl -sS --fail --max-time 10 "http://$ADDR/admin/flightrecorder" >/dev/null \
    || fail "flight recorder query failed"
curl -sS --fail --max-time 10 "http://$ADDR/readyz?verbose" | grep -q '"drift"' \
    || fail "/readyz?verbose misses the drift section"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "obs-smoke: OK"
