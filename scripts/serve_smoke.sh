#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for cmd/spamserver.
#
# Generates a small synthetic web graph, starts spamserver on an
# ephemeral port, probes /healthz, /readyz, one /v1/host lookup, and
# /v1/top, forces a synchronous refresh, and shuts the server down.
# Exits non-zero on any failed probe. Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
$GO build -o "$WORK/genweb" ./cmd/genweb
$GO build -o "$WORK/spamserver" ./cmd/spamserver

echo "serve-smoke: generating 10k-host example graph"
"$WORK/genweb" -hosts 10000 -out "$WORK/web" >/dev/null

"$WORK/spamserver" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -graph "$WORK/web.graph" -names "$WORK/web.names" -core "$WORK/web.core" \
    2>"$WORK/server.log" &
SERVER_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve-smoke: server never bound" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
echo "serve-smoke: server up on $ADDR"

probe() {
    # probe <name> <url> [curl args...] — body must arrive with HTTP 200.
    name=$1
    url=$2
    shift 2
    if ! body=$(curl -sS --fail --max-time 10 "$@" "$url"); then
        echo "serve-smoke: $name probe failed ($url)" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    echo "serve-smoke: $name -> $body"
}

probe healthz "http://$ADDR/healthz"
probe readyz "http://$ADDR/readyz"
HOST=$(head -1 "$WORK/web.names")
probe "host lookup" "http://$ADDR/v1/host/$HOST"
probe top "http://$ADDR/v1/top?n=3"
probe refresh "http://$ADDR/admin/refresh?wait=1" -X POST
probe status "http://$ADDR/admin/status"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "serve-smoke: OK"
