#!/bin/sh
# shard_smoke.sh — end-to-end smoke test for the sharded serving tier.
#
# Generates a pre-partitioned synthetic web graph (genweb -shards 2
# -churn 1), boots one spamserver per shard plus a -role=router front,
# probes routed lookups, batches, and rankings, applies a cross-shard
# delta through the router, and asserts the generation fence advanced
# with no torn view (every touched shard's floor covers the published
# epoch, routed records carry post-delta epochs). Exits non-zero on
# any failed probe. Run via `make shard-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "shard-smoke: building binaries"
$GO build -o "$WORK/genweb" ./cmd/genweb
$GO build -o "$WORK/spamserver" ./cmd/spamserver

echo "shard-smoke: generating 10k-host graph partitioned over 2 shards"
"$WORK/genweb" -hosts 10000 -shards 2 -churn 1 -out "$WORK/web" >/dev/null
for s in 0 1; do
    for ext in graph names core; do
        if [ ! -s "$WORK/web.shard$s.$ext" ]; then
            echo "shard-smoke: genweb -shards 2 wrote no web.shard$s.$ext" >&2
            exit 1
        fi
    done
done

logs() {
    for f in "$WORK"/shard0.log "$WORK"/shard1.log "$WORK"/router.log; do
        [ -f "$f" ] && { echo "--- $f" >&2; cat "$f" >&2; }
    done
}

wait_addr() {
    # wait_addr <file> <pid> <name>
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$2" 2>/dev/null; then
            echo "shard-smoke: $3 never bound" >&2
            logs
            exit 1
        fi
        sleep 0.1
    done
}

for s in 0 1; do
    "$WORK/spamserver" -addr 127.0.0.1:0 -addr-file "$WORK/shard$s.addr" \
        -graph "$WORK/web.shard$s.graph" -names "$WORK/web.shard$s.names" \
        -core "$WORK/web.shard$s.core" 2>"$WORK/shard$s.log" &
    PIDS="$PIDS $!"
    eval "SHARD${s}_PID=$!"
done
wait_addr "$WORK/shard0.addr" "$SHARD0_PID" "shard 0"
wait_addr "$WORK/shard1.addr" "$SHARD1_PID" "shard 1"
S0=$(cat "$WORK/shard0.addr")
S1=$(cat "$WORK/shard1.addr")
echo "shard-smoke: shards up on $S0 and $S1"

"$WORK/spamserver" -role=router -addr 127.0.0.1:0 -addr-file "$WORK/router.addr" \
    -shards "http://$S0;http://$S1" -probe-interval 200ms \
    2>"$WORK/router.log" &
PIDS="$PIDS $!"
ROUTER_PID=$!
wait_addr "$WORK/router.addr" "$ROUTER_PID" "router"
ADDR=$(cat "$WORK/router.addr")

# The router answers 503 until its first probe round fences all shards.
i=0
until curl -sf --max-time 5 "http://$ADDR/readyz" >/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shard-smoke: router fence never formed" >&2
        logs
        exit 1
    fi
    sleep 0.1
done
echo "shard-smoke: router up on $ADDR"

probe() {
    # probe <name> <url> [curl args...] — body must arrive with HTTP 200.
    name=$1
    url=$2
    shift 2
    if ! body=$(curl -sS --fail --max-time 30 "$@" "$url"); then
        echo "shard-smoke: $name probe failed ($url)" >&2
        logs
        exit 1
    fi
    echo "shard-smoke: $name -> $(echo "$body" | head -c 200)"
}

# expect <name> <pattern> — the last probe's body must contain pattern.
expect() {
    if ! echo "$body" | grep -q "$2"; then
        echo "shard-smoke: $1: expected $2 in: $body" >&2
        logs
        exit 1
    fi
}

probe readyz "http://$ADDR/readyz"
expect "initial generation" '"generation":1'

# Routed point lookups: one host from each shard's partition.
H0=$(head -1 "$WORK/web.shard0.names")
H1=$(head -1 "$WORK/web.shard1.names")
probe "shard-0 lookup" "http://$ADDR/v1/host/$H0"
expect "routed host" "\"host\":\"$H0\""
probe "shard-1 lookup" "http://$ADDR/v1/host/$H1"
expect "routed host" "\"host\":\"$H1\""

# Cross-shard batch: aligned records, null per miss.
probe "cross-shard batch" "http://$ADDR/v1/batch" -X POST \
    --data-binary "{\"hosts\":[\"$H0\",\"no-such-host.example\",\"$H1\"]}"
expect "batch alignment" "\"host\":\"$H0\""
expect "batch alignment" "\"host\":\"$H1\""
expect "null per miss" 'null'
expect "miss counted" '"misses":1'

# Scatter-gather ranking across both shards.
probe "top merge" "http://$ADDR/v1/top?metric=relmass&n=5"
expect "merged ranking" '"metric":"relmass"'
expect "merged records" '"records":\['

# Cross-shard delta through the router: the churn delta plus two fresh
# hosts whose names hash to both shards in practice.
{
    echo "delta 1"
    echo "+h smoke-added-0.example"
    echo "+h smoke-added-1.example"
    tail -n +2 "$WORK/web.delta.1"
} >"$WORK/routed.delta"
probe "cross-shard delta" "http://$ADDR/admin/delta" -X POST --data-binary "@$WORK/routed.delta"
expect "fence advanced" '"generation":2'

probe "router status" "http://$ADDR/admin/status"
expect "role" '"role":"router"'
expect "generation" '"generation":2'
expect "delta counted" '"deltas":1'
# No torn view: every shard's fence floor reached epoch 2 and both
# replicas report it. A shard left behind would still show epoch 1.
expect "shard 0 floor" '"index":0,"min_epoch":2'
expect "shard 1 floor" '"index":1,"min_epoch":2'

# Post-delta reads must come from fenced generations.
probe "post-delta lookup" "http://$ADDR/v1/host/smoke-added-0.example"
expect "post-delta epoch" '"epoch":2'
probe "post-delta readyz" "http://$ADDR/readyz"
expect "served generation" '"generation":2'

# Drain: the router must exit cleanly on SIGTERM.
kill "$ROUTER_PID"
wait "$ROUTER_PID" 2>/dev/null || true
echo "shard-smoke: OK"
