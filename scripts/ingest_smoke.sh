#!/bin/sh
# ingest_smoke.sh — end-to-end crash-recovery smoke test for the
# durable ingest pipeline.
#
# Generates a graph plus a churn-stream delta feed, then runs the same
# feed through two servers: a control that never crashes, and a durable
# server (-wal-dir) that is SIGKILLed mid-stream after acknowledging a
# prefix of the feed. The killed server is restarted on the same WAL
# directory, must come back already serving the recovered epoch, and
# after the rest of the feed its epoch and per-host scores must match
# the control exactly — the acknowledged-batches-survive-kill-9
# property, end to end. Run via `make ingest-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
CONTROL_PID=""
CRASH_PID=""
cleanup() {
    for pid in "$CONTROL_PID" "$CRASH_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

STREAM=6 # deltas in the feed
CRASH_AFTER=4 # acknowledged batches before the SIGKILL

echo "ingest-smoke: building binaries"
$GO build -o "$WORK/genweb" ./cmd/genweb
$GO build -o "$WORK/spamserver" ./cmd/spamserver

echo "ingest-smoke: generating 10k-host graph with a $STREAM-batch churn stream"
"$WORK/genweb" -hosts 10000 -churn-stream $STREAM -out "$WORK/web" >/dev/null
for i in $(seq 1 $STREAM); do
    f=$(printf '%s.stream.%05d.delta' "$WORK/web" "$i")
    if [ ! -s "$f" ]; then
        echo "ingest-smoke: missing stream delta $f" >&2
        exit 1
    fi
done

# boot <addr-file> <log> [extra flags...] — start a server and echo its PID.
boot() {
    af=$1
    log=$2
    shift 2
    # stdout must not leak into the caller's command substitution: the
    # substitution only returns when every writer on the pipe exits.
    "$WORK/spamserver" -addr 127.0.0.1:0 -addr-file "$af" \
        -graph "$WORK/web.graph" -names "$WORK/web.names" -core "$WORK/web.core" \
        "$@" >/dev/null 2>"$log" &
    echo $!
}

# wait_addr <addr-file> <pid> <name> — block until the server binds.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 300 ] || ! kill -0 "$2" 2>/dev/null; then
            echo "ingest-smoke: $3 never bound" >&2
            sed -n '1,40p' "$WORK"/*.log >&2
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

# post_delta <addr> <i> — apply stream delta i synchronously.
post_delta() {
    f=$(printf '%s.stream.%05d.delta' "$WORK/web" "$2")
    if ! curl -sS --fail --max-time 120 -X POST --data-binary "@$f" \
        "http://$1/admin/delta?wait=1" >/dev/null; then
        echo "ingest-smoke: delta $2 against $1 failed" >&2
        exit 1
    fi
}

# epoch_of <addr> — the served snapshot epoch.
epoch_of() {
    curl -sS --fail --max-time 30 "http://$1/admin/status" |
        sed 's/.*"epoch":\([0-9]*\).*/\1/'
}

# --- Control: never crashes, applies the whole feed. -----------------
CONTROL_PID=$(boot "$WORK/control.addr" "$WORK/control.log")
CONTROL=$(wait_addr "$WORK/control.addr" "$CONTROL_PID" control)
echo "ingest-smoke: control on $CONTROL"
for i in $(seq 1 $STREAM); do
    post_delta "$CONTROL" "$i"
done

# --- Durable server: ack a prefix, SIGKILL, restart, finish. ---------
CRASH_PID=$(boot "$WORK/crash.addr" "$WORK/crash1.log" \
    -wal-dir "$WORK/wal" -compact-every 2s -wal-group-commit 1ms)
CRASH=$(wait_addr "$WORK/crash.addr" "$CRASH_PID" "durable server")
echo "ingest-smoke: durable server on $CRASH (wal: $WORK/wal)"
for i in $(seq 1 $CRASH_AFTER); do
    post_delta "$CRASH" "$i"
done
# Let the 2s compactor get a chance to fold a prefix into a snapshot,
# so the restart exercises snapshot-load + suffix-replay, not only
# full replay. Recovery is correct either way; this widens coverage.
sleep 2.5
echo "ingest-smoke: SIGKILL after $CRASH_AFTER acknowledged batches"
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
CRASH_PID=""
if [ ! -d "$WORK/wal" ]; then
    echo "ingest-smoke: WAL directory missing after kill" >&2
    exit 1
fi

rm -f "$WORK/crash.addr"
CRASH_PID=$(boot "$WORK/crash.addr" "$WORK/crash2.log" \
    -wal-dir "$WORK/wal" -compact-every 2s -wal-group-commit 1ms)
CRASH=$(wait_addr "$WORK/crash.addr" "$CRASH_PID" "restarted server")
EPOCH=$(epoch_of "$CRASH")
WANT=$((CRASH_AFTER + 1))
if [ "$EPOCH" != "$WANT" ]; then
    echo "ingest-smoke: restarted server serves epoch $EPOCH, want recovered epoch $WANT" >&2
    sed -n '1,40p' "$WORK/crash2.log" >&2
    exit 1
fi
echo "ingest-smoke: restart recovered every acknowledged batch (epoch $EPOCH)"

for i in $(seq $((CRASH_AFTER + 1)) $STREAM); do
    post_delta "$CRASH" "$i"
done
EPOCH=$(epoch_of "$CRASH")
CONTROL_EPOCH=$(epoch_of "$CONTROL")
if [ "$EPOCH" != "$CONTROL_EPOCH" ]; then
    echo "ingest-smoke: final epoch $EPOCH != control $CONTROL_EPOCH" >&2
    exit 1
fi

# Crash+recover must be invisible in the served scores: spot-check a
# spread of hosts against the control, byte for byte.
for HOST in $(sed -n '1p;1000p;5000p;9999p' "$WORK/web.names"); do
    A=$(curl -sS --fail --max-time 30 "http://$CRASH/v1/host/$HOST")
    B=$(curl -sS --fail --max-time 30 "http://$CONTROL/v1/host/$HOST")
    if [ "$A" != "$B" ]; then
        echo "ingest-smoke: $HOST diverged after recovery:" >&2
        echo "  recovered: $A" >&2
        echo "  control:   $B" >&2
        exit 1
    fi
done
echo "ingest-smoke: recovered scores match the never-crashed control"

kill "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true
CRASH_PID=""
kill "$CONTROL_PID" 2>/dev/null || true
wait "$CONTROL_PID" 2>/dev/null || true
CONTROL_PID=""
echo "ingest-smoke: OK"
