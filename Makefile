GO ?= go

.PHONY: build test bench bench-all race vet lint lint-json vectorcheck fuzz-smoke serve-smoke delta-smoke obs-smoke shard-smoke ingest-smoke verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the acceptance benchmarks — the 1M-host sweep and
# solve-to-epsilon suite (fixed-sweep layout comparison plus the
# Gauss-Southwell vs full-sweep wall-clock headline), the 10k-node
# mass-estimation sweep, the serving-layer lookup benchmarks (plain,
# metrics-only, fully instrumented, and the paired telemetry-overhead
# measurement backing the <=3% budget), the routed lookup/batch
# benchmarks against their single-node ServeLookup baseline, and the
# incremental (delta + warm start) refresh against its cold baseline,
# plus the durable-ingest pair (WAL append throughput in both fsync
# disciplines, and snapshot-load + WAL-replay recovery) — with
# -benchmem, and converts the combined output into the
# machine-readable benchmark summary for this PR.
BENCH_OUT ?= BENCH_pr10.json
bench:
	{ $(GO) test -run='^$$' -bench=1M -benchtime=2x -timeout 1800s ./internal/pagerank/ && \
	  $(GO) test -run='^$$' -bench=10k -benchmem ./internal/mass/ && \
	  $(GO) test -run='^$$' -bench='ServeLookup|ServeTelemetryOverhead' -benchmem ./internal/serve/ && \
	  $(GO) test -run='^$$' -bench='RouterLookup|RouterBatch' -benchmem ./internal/shard/ && \
	  $(GO) test -run='^$$' -bench=Refresh10k -benchmem ./internal/delta/ && \
	  $(GO) test -run='^$$' -bench='IngestThroughput|RecoveryReplay' -benchtime=3x -benchmem ./internal/ingest/; } \
	  | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# bench-all is the full benchmark sweep over every package.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Race-check everything: the solver engine and mass layer are the hot
# concurrent paths, but obs registries/spans and experiment batching
# are shared across goroutines too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs spamlint, the repo's own static-analysis suite
# (internal/analysis): sliceexport, floatcmp, f32acc, solveerr,
# spanend, printcall, metricname, plus the flow-sensitive concurrency
# family on the shared CFG layer: publishfreeze, lockbal, atomicmix,
# ctxleak. Suppress intentional findings with
# `// lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/spamlint ./...

# lint-json writes the machine-readable report (every finding,
# including suppressed ones with their lint:ignore reasons) to
# LINT_OUT; CI uploads it as a per-commit artifact. Exit status matches
# `make lint`.
LINT_OUT ?= spamlint.json
lint-json:
	$(GO) run ./cmd/spamlint -json -o $(LINT_OUT) ./...

# vectorcheck builds the engine with the debug guard that scans every
# solve result for NaN/±Inf/negative scores, and runs the pagerank
# tests under it.
vectorcheck:
	$(GO) test -tags vectorcheck ./internal/pagerank/

# fuzz-smoke gives each fuzz target a short budget; regressions in the
# decoders, host collapsing, or mass derivation surface fast.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzReadText -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzHostOf -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzGapList -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzCollapseToHosts -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzDerive -fuzztime=$(FUZZTIME) ./internal/mass/
	$(GO) test -run='^$$' -fuzz=FuzzDeltaApply -fuzztime=$(FUZZTIME) ./internal/delta/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/ingest/

# serve-smoke boots cmd/spamserver on an ephemeral port against a
# generated example graph, curls the health and query endpoints, forces
# a refresh, and shuts it down.
serve-smoke:
	sh scripts/serve_smoke.sh

# delta-smoke exercises the incremental refresh path end to end:
# generate a graph plus one churn delta, boot spamserver, POST the
# delta, and assert the snapshot generation advanced.
delta-smoke:
	sh scripts/delta_smoke.sh

# shard-smoke boots the 2-shard topology end to end: genweb -shards 2
# pre-partitions a graph, one spamserver per shard plus a -role=router
# front, routed lookups/batches/rankings, and a cross-shard delta that
# must advance the generation fence with no torn view.
shard-smoke:
	sh scripts/shard_smoke.sh

# ingest-smoke is the end-to-end crash-recovery proof: a durable
# server (-wal-dir) is SIGKILLed mid-churn-stream, restarted on the
# same WAL, and must serve the recovered epoch and — after the rest of
# the stream — scores identical to a never-crashed control.
ingest-smoke:
	sh scripts/ingest_smoke.sh

# obs-smoke exercises the telemetry surface end to end: boot
# spamserver with tracing, the metric recorder, and the drift watchdog
# enabled, validate /metrics with the strict Prometheus parser
# (cmd/promcheck), check trace headers on a lookup, and assert a forced
# refresh grows the /admin/timeseries history.
obs-smoke:
	sh scripts/obs_smoke.sh

# verify is the tier-1 gate: vet, spamlint, full build, full test
# suite, the race detector over every package, and the pagerank tests
# under the vectorcheck debug tag.
verify: vet lint build test race vectorcheck
	@echo "verify: OK"

clean:
	$(GO) clean ./...
