GO ?= go

.PHONY: build test bench bench-all race vet verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the 10k-node acceptance benchmarks (plain, obs-enabled,
# and batched recompute) with -benchmem and converts the output into
# the machine-readable BENCH_pr2.json summary.
bench:
	$(GO) test -run='^$$' -bench=10k -benchmem ./internal/mass/ | $(GO) run ./cmd/benchjson -o BENCH_pr2.json

# bench-all is the full benchmark sweep over every package.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Race-check the concurrent solver engine and the mass layer on top.
race:
	$(GO) test -race ./internal/pagerank/... ./internal/mass/...

vet:
	$(GO) vet ./...

# verify is the tier-1 gate: vet, full build, full test suite, and the
# race detector over the engine and estimator packages.
verify: vet build test race
	@echo "verify: OK"

clean:
	$(GO) clean ./...
