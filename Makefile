GO ?= go

.PHONY: build test bench race vet verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Race-check the concurrent solver engine and the mass layer on top.
race:
	$(GO) test -race ./internal/pagerank/... ./internal/mass/...

vet:
	$(GO) vet ./...

# verify is the tier-1 gate: vet, full build, full test suite, and the
# race detector over the engine and estimator packages.
verify: vet build test race
	@echo "verify: OK"

clean:
	$(GO) clean ./...
