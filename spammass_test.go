package spammass_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spammass"
)

// buildFarmGraph builds a small world: a reputable cluster (0,1,2), a
// spam farm (target 3 boosted by 4..13), and a contested node.
func buildFarmGraph() *spammass.Graph {
	b := spammass.NewBuilder(14)
	// Reputable triangle.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3) // one stray link to the farm target
	// The farm: boosters 4..13 all point at 3.
	for x := spammass.NodeID(4); x <= 13; x++ {
		b.AddEdge(x, 3)
	}
	return b.Build()
}

func TestFacadeEndToEnd(t *testing.T) {
	g := buildFarmGraph()
	res, err := spammass.PageRank(g, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge")
	}
	est, err := spammass.Estimate(g, []spammass.NodeID{0, 1, 2}, spammass.EstimateOptions{
		Solver: spammass.DefaultSolverConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cands := spammass.Detect(est, spammass.DetectConfig{
		RelMassThreshold:        0.5,
		ScaledPageRankThreshold: 2,
	})
	if len(cands) != 1 || cands[0].Node != 3 {
		t.Fatalf("candidates = %v, want exactly the farm target 3", cands)
	}
	if cands[0].RelMass < 0.8 {
		t.Errorf("farm target relative mass %.3f, want high", cands[0].RelMass)
	}
}

func TestFacadeExactMassMatchesEstimateWithFullCore(t *testing.T) {
	g := buildFarmGraph()
	good := []spammass.NodeID{0, 1, 2}
	spam := []spammass.NodeID{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	est, err := spammass.Estimate(g, good, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := spammass.ExactMass(g, spam, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for x := range est.Abs {
		if math.Abs(est.Abs[x]-exact.Abs[x]) > 1e-9 {
			t.Fatalf("node %d: estimated %v vs exact %v with a complete core", x, est.Abs[x], exact.Abs[x])
		}
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := buildFarmGraph()
	var text, bin bytes.Buffer
	if err := spammass.WriteGraphText(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := spammass.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	gt, err := spammass.ReadGraphText(&text)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := spammass.ReadGraphBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumEdges() != g.NumEdges() || gb.NumEdges() != g.NumEdges() {
		t.Error("round trips changed edge counts")
	}
	st := spammass.Stats(g)
	if st.Nodes != 14 {
		t.Errorf("stats nodes = %d", st.Nodes)
	}
}

func TestFacadeTrustRank(t *testing.T) {
	g := buildFarmGraph()
	trust, err := spammass.TrustRank(g, []spammass.NodeID{0, 1, 2}, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trust[4] != 0 {
		t.Errorf("booster has trust %v, want 0", trust[4])
	}
	seeds, err := spammass.SelectTrustRankSeeds(g, func(x spammass.NodeID) bool { return x <= 2 }, 14, 3, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Error("no seeds selected")
	}
}

func TestFacadeWorldAndCore(t *testing.T) {
	w, err := spammass.GenerateWorld(spammass.DefaultWorldConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	core, err := spammass.AssembleGoodCore(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatal(err)
	}
	est, err := spammass.Estimate(w.Graph, core.Nodes, spammass.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cands := spammass.Detect(est, spammass.DefaultDetectConfig())
	if len(cands) == 0 {
		t.Fatal("no candidates on a world with planted farms")
	}
	spamHits := 0
	for _, c := range cands {
		if w.IsSpam(c.Node) || w.Info[c.Node].Anomalous {
			spamHits++
		}
	}
	if frac := float64(spamHits) / float64(len(cands)); frac < 0.7 {
		t.Errorf("only %.0f%% of candidates are spam or known anomalies", 100*frac)
	}
}

func TestFacadeCombine(t *testing.T) {
	g := buildFarmGraph()
	white, err := spammass.Estimate(g, []spammass.NodeID{0, 1, 2}, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		t.Fatal(err)
	}
	black, err := spammass.EstimateFromBlacklist(g, []spammass.NodeID{4, 5}, 0, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		t.Fatal(err)
	}
	comb, err := spammass.CombineEstimates(white, black)
	if err != nil {
		t.Fatal(err)
	}
	if comb.N() != white.N() {
		t.Error("combined estimate has wrong length")
	}
}

func TestFacadeCollapseToHosts(t *testing.T) {
	pages := spammass.FromEdges(3, [][2]spammass.NodeID{{0, 1}, {1, 2}})
	h, err := spammass.CollapseToHosts(pages, []string{"http://a/x", "http://a/y", "http://b/z"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Graph.NumNodes() != 2 || h.Graph.NumEdges() != 1 {
		t.Errorf("collapsed to %d nodes / %d edges, want 2 / 1", h.Graph.NumNodes(), h.Graph.NumEdges())
	}
}

// ExampleDetect demonstrates the quickstart flow on a ten-booster farm.
func ExampleDetect() {
	b := spammass.NewBuilder(14)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	for x := spammass.NodeID(4); x <= 13; x++ {
		b.AddEdge(x, 3) // boosters point at the farm target
	}
	g := b.Build()
	est, err := spammass.Estimate(g, []spammass.NodeID{0, 1, 2}, spammass.EstimateOptions{
		Solver: spammass.DefaultSolverConfig(),
	})
	if err != nil {
		panic(err)
	}
	for _, c := range spammass.Detect(est, spammass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 2}) {
		fmt.Printf("node %d relative mass %.2f\n", c.Node, c.RelMass)
	}
	// Output:
	// node 3 relative mass 1.00
}

func TestFacadeMonteCarloAndDiskGraph(t *testing.T) {
	g := buildFarmGraph()
	exact, err := spammass.PageRank(g, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	mc, err := spammass.MonteCarloPageRank(g, spammass.MonteCarloConfig{
		Damping: 0.85, WalksPerNode: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The farm target (node 3) dominates in both.
	if mc[3] < 0.5*exact.Scores[3] || mc[3] > 1.5*exact.Scores[3] {
		t.Errorf("Monte Carlo p_3 = %v vs exact %v", mc[3], exact.Scores[3])
	}

	path := t.TempDir() + "/g.smdg"
	if err := spammass.BuildDiskGraph(path, g); err != nil {
		t.Fatal(err)
	}
	dg, err := spammass.OpenDiskGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	v := make(spammass.Vector, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	disk, err := dg.PageRank(v, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	for x := range disk.Scores {
		if math.Abs(disk.Scores[x]-exact.Scores[x]) > 1e-12 {
			t.Fatalf("disk vs memory PageRank differ at %d", x)
		}
	}
}

func TestFacadeForensicsAndAnomalies(t *testing.T) {
	g := buildFarmGraph()
	est, err := spammass.Estimate(g, []spammass.NodeID{0, 1, 2}, spammass.EstimateOptions{Solver: spammass.DefaultSolverConfig()})
	if err != nil {
		t.Fatal(err)
	}
	cands := spammass.Detect(est, spammass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 2})
	farms, alliances, err := spammass.ExtractFarms(g, est, cands, spammass.DefaultForensicsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(farms) != 1 || len(alliances) != 1 {
		t.Fatalf("%d farms / %d alliances, want 1 / 1", len(farms), len(alliances))
	}
	single, err := spammass.ExtractFarm(g, est, 3, spammass.DefaultForensicsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if single.BoosterShare < 0.5 {
		t.Errorf("booster share %.3f, want the farm explained", single.BoosterShare)
	}
	sup, px, err := spammass.Supporters(g, 3, spammass.DefaultSolverConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 5 || px <= 0 {
		t.Fatalf("supporters = %d, px = %v", len(sup), px)
	}
	// Anomaly discovery on this tiny graph: the farm is judged spam,
	// so no good anomalous community exists.
	cfg := spammass.DefaultAnomalyConfig()
	cfg.ScaledPageRankThreshold = 2
	comms, err := spammass.DiscoverAnomalies(g, est, func(x spammass.NodeID) bool { return x != 3 }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 0 {
		t.Errorf("tiny graph produced %d anomalous communities", len(comms))
	}
}

func TestFacadeContributionAndJump(t *testing.T) {
	g := buildFarmGraph()
	q, err := spammass.Contribution(g, []spammass.NodeID{4, 5}, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q[3] <= 0 {
		t.Error("boosters contribute nothing to the target")
	}
	n := g.NumNodes()
	v := make(spammass.Vector, n)
	v[0] = 0.5
	res, err := spammass.PageRankWithJump(g, v, spammass.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] <= 0 {
		t.Error("custom jump produced zero score at the jump node")
	}
}

func TestFacadeDegreeOutliersAndContent(t *testing.T) {
	// A cohort with identical, unusual in-degree (30) on an organic
	// power-law-ish background.
	rng := rand.New(rand.NewSource(12))
	b := spammass.NewBuilder(20000)
	for x := spammass.NodeID(0); x < 2000; x++ {
		for i := 0; i < 1+rng.Intn(9); i++ {
			// Preferential-ish target pick.
			b.AddEdge(x, spammass.NodeID(rng.Intn(1+rng.Intn(2000))))
		}
	}
	next := 2500
	for x := 2000; x < 2500; x++ {
		for i := 0; i < 30; i++ {
			b.AddEdge(spammass.NodeID(next), spammass.NodeID(x))
			next++
		}
	}
	g := b.Build()
	flagged, err := spammass.DegreeOutliers(g, spammass.DegreeOutlierConfig{
		In: true, MinDegree: 2, OutlierFactor: 3, MinCount: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	inCohort := 0
	for _, x := range flagged {
		if x >= 2000 && x < 2500 {
			inCohort++
		}
	}
	if inCohort < 400 {
		t.Errorf("flagged %d of 500 cohort members", inCohort)
	}

	// Content classifier round trip through the facade.
	feats := []spammass.ContentFeatures{
		{LogWordCount: 3, KeywordDensity: 0.02, Duplication: 0.2},
		{LogWordCount: 2.5, KeywordDensity: 0.18, Duplication: 0.9},
	}
	clf, err := spammass.TrainContentClassifier(
		[]spammass.ContentFeatures{feats[0], feats[1], feats[0], feats[1]},
		[]bool{false, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if clf.SpamProbability(feats[1]) <= clf.SpamProbability(feats[0]) {
		t.Error("classifier does not separate the training points")
	}
	if spammass.DefaultMonteCarloConfig().WalksPerNode <= 0 {
		t.Error("default Monte Carlo config broken")
	}
}

// ExampleEstimate shows exact-versus-estimated mass on the smallest
// interesting graph: with a complete core they coincide.
func ExampleEstimate() {
	g := spammass.FromEdges(4, [][2]spammass.NodeID{
		{1, 0}, // good supporter
		{2, 0}, // spam supporter
		{3, 2}, // booster behind it
	})
	est, err := spammass.Estimate(g, []spammass.NodeID{1}, spammass.EstimateOptions{
		Solver: spammass.DefaultSolverConfig(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("target relative mass %.2f\n", est.Rel[0])
	// Output:
	// target relative mass 0.75
}

// ExampleTrustRank shows the detection gap TrustRank leaves: the farm
// target inherits trust through its one good link, so demotion alone
// does not flag it — the gap spam mass fills.
func ExampleTrustRank() {
	b := spammass.NewBuilder(7)
	b.AddEdge(0, 1) // good cluster
	b.AddEdge(1, 0)
	b.AddEdge(0, 2) // one good link to the target
	for x := spammass.NodeID(3); x <= 6; x++ {
		b.AddEdge(x, 2) // boosters
	}
	g := b.Build()
	trust, err := spammass.TrustRank(g, []spammass.NodeID{0, 1}, spammass.DefaultSolverConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("target trusted: %v, boosters trusted: %v\n", trust[2] > 0, trust[3] > 0)
	// Output:
	// target trusted: true, boosters trusted: false
}
