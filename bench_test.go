package spammass_test

// One benchmark per table and figure of the paper's evaluation, plus
// the ablations DESIGN.md calls out. Each benchmark regenerates its
// experiment end to end (given a shared generated world) and reports
// the same rows/series the paper does when run with -v via the
// experiment binary; here they serve as repeatable timing targets:
//
//	go test -bench=. -benchmem
//
// The world scale is reduced (20k hosts) so a full bench sweep stays
// in the seconds; cmd/experiments runs the same code at full scale.

import (
	"io"
	"sync"
	"testing"

	"spammass/internal/experiments"
	"spammass/internal/pagerank"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Hosts = 20000
		cfg.SampleFrac = 0.9
		benchEnv, benchErr = experiments.NewEnv(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkFigure1 regenerates the Figure 1 naïve-scheme comparison.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure1(io.Discard, []int{0, 1, 2, 3, 5, 10}, pagerank.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 contribution analysis.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure2(io.Discard, pagerank.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (all six columns for the twelve
// Figure 2 nodes).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(io.Discard, pagerank.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataSetStats regenerates the Section 4.1 dataset statistics.
func BenchmarkDataSetStats(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunDataSet(io.Discard)
	}
}

// BenchmarkPageRankDistribution regenerates the Section 4.3 analysis.
func BenchmarkPageRankDistribution(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunPRDist(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the 20 sample groups of Table 2.
func BenchmarkTable2(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunTable2(io.Discard)
	}
}

// BenchmarkFigure3 regenerates the sample composition of Figure 3.
func BenchmarkFigure3(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunFigure3(io.Discard)
	}
}

// BenchmarkFigure4 regenerates the precision-vs-threshold curves.
func BenchmarkFigure4(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunFigure4(io.Discard)
	}
}

// BenchmarkFigure5 regenerates the core size/coverage comparison
// (five extra core-based PageRank solves per iteration).
func BenchmarkFigure5(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFigure5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates the absolute-mass distribution.
func BenchmarkFigure6(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFigure6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnomalyElimination regenerates the Section 4.4.2 core-fix
// experiment (one extra core-based PageRank solve per iteration).
func BenchmarkAnomalyElimination(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunAnomalyFix(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbsoluteMass regenerates the Section 4.6 top-list analysis.
func BenchmarkAbsoluteMass(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunAbsMass(io.Discard, 20)
	}
}

// BenchmarkScalingAblation measures the Section 3.5 jump-scaling
// ablation (one unscaled PageRank solve per iteration).
func BenchmarkScalingAblation(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunScaling(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdSweep measures the (ρ, τ) grid sweep of Algorithm 2.
func BenchmarkThresholdSweep(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunSweep(io.Discard)
	}
}

// BenchmarkCombinedEstimators measures the white+black combination
// experiment.
func BenchmarkCombinedEstimators(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunCombined(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison measures the detector comparison
// (TrustRank, degree outliers, SpamRank-style).
func BenchmarkBaselineComparison(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunBaselines(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvers measures the three PageRank solvers on the world
// graph.
func BenchmarkSolvers(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunSolvers(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmForensics measures candidate explanation: reverse
// contribution solves plus alliance grouping for 10 candidates.
func BenchmarkFarmForensics(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunForensics(io.Discard, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnomalyDiscovery measures the automated Section 4.4.2 loop
// (clustering plus one core-based PageRank solve).
func BenchmarkAnomalyDiscovery(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunAnomalyDiscovery(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentFilter measures content synthesis, classifier
// training, and candidate filtering.
func BenchmarkContentFilter(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunContentFilter(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversarial measures the link-purchase sweep (six full
// re-estimations on modified graphs).
func BenchmarkAdversarial(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunAdversarial(io.Discard, []int{0, 10, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreGrowth measures the incremental-core curve (six
// core-based PageRank solves).
func BenchmarkCoreGrowth(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunCoreGrowth(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPipeline measures the full production flow on a
// fresh world: generate, assemble the core, estimate, detect.
func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultConfig()
		cfg.Hosts = 10000
		cfg.SampleFrac = 0.9
		if _, err := experiments.NewEnv(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStability measures the estimate-stability ablation (four
// half-core re-estimations plus bucketing).
func BenchmarkStability(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunStability(io.Discard, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporal measures one spam-churn step plus the full
// re-estimation at t1.
func BenchmarkTemporal(b *testing.B) {
	e := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunTemporal(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
