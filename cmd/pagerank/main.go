// Command pagerank computes linear PageRank over a graph file and
// prints the top-scoring nodes, or the full score vector with -all.
// With -core it computes the core-based PageRank p' instead, biased to
// a good core read from a file of node IDs (one per line), scaled to
// ‖w‖ = gamma. Graph files may be text edge lists, the compact binary
// format (SMGR), or the out-of-core format (SMDG) built by
// diskgraph.Build — the last is solved without loading the adjacency
// into memory.
//
// Usage:
//
//	pagerank -graph web.graph [-core web.core] [-gamma 0.85] [-top 20]
//	         [-solver jacobi|gauss-seidel|power|montecarlo]
//	         [-report out.json] [-trace trace.json] [-debug-addr :6060] [-v]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"spammass/internal/cliobs"
	"spammass/internal/diskgraph"
	"spammass/internal/graph"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (binary or text format)")
	corePath := flag.String("core", "", "optional good-core file: one node ID per line")
	gamma := flag.Float64("gamma", 0.85, "core jump scaling ‖w‖ (0 = plain 1/n entries)")
	damping := flag.Float64("damping", 0.85, "damping factor c")
	epsilon := flag.Float64("epsilon", 1e-10, "L1 convergence bound")
	solver := flag.String("solver", "jacobi", "jacobi, gauss-seidel, power, or montecarlo")
	walks := flag.Int("walks", 500, "walks per node for -solver montecarlo")
	top := flag.Int("top", 20, "print the top-k nodes by score")
	all := flag.Bool("all", false, "print every node's score instead of the top-k")
	var ocfg cliobs.Options
	ocfg.Register(flag.CommandLine)
	flag.Parse()
	if *graphPath == "" {
		die("missing -graph")
	}

	pipe, err := cliobs.Start("pagerank", ocfg, os.Args[1:])
	if err != nil {
		die("observability: %v", err)
	}
	octx := pipe.Ctx

	// Out-of-core graphs are detected by magic and solved streaming.
	if dg, derr := diskgraph.Open(*graphPath); derr == nil {
		n := dg.NumNodes()
		v := pagerank.UniformJump(n)
		if *corePath != "" {
			core, err := loadCore(*corePath, n)
			if err != nil {
				die("load core: %v", err)
			}
			if *gamma > 0 {
				v = pagerank.ScaledCoreJump(n, core, *gamma)
			} else {
				v = pagerank.CoreJump(n, core, 1/float64(n))
			}
		}
		// The command reports convergence itself, so truncated solves
		// are accepted rather than surfaced as ErrNotConverged.
		res, err := dg.PageRank(v, pagerank.Config{Damping: *damping, Epsilon: *epsilon, MaxIter: 1000, AllowTruncated: true, Obs: octx})
		if err != nil {
			die("solve (disk): %v", err)
		}
		fmt.Fprintf(os.Stderr, "out-of-core: converged=%v iterations=%d residual=%.2e\n",
			res.Converged, res.Iterations, res.Residual)
		if pipe.Report != nil {
			pipe.Report.Graph = &obs.GraphInfo{Path: *graphPath, Format: "smdg", Nodes: n, Edges: dg.NumEdges()}
			pipe.Report.Solves = append(pipe.Report.Solves, obs.SolveSummary{
				Name:          "pagerank-disk",
				Algorithm:     "jacobi",
				Batch:         1,
				Iterations:    res.Iterations,
				FinalResidual: res.Residual,
				Converged:     res.Converged,
			})
		}
		printScores(res.Scores, n, *damping, *top, *all)
		finish(pipe)
		return
	}

	g, ginfo, err := graph.LoadFile(*graphPath, octx)
	if err != nil {
		die("load graph: %v", err)
	}
	n := g.NumNodes()
	v := pagerank.UniformJump(n)
	if *corePath != "" {
		core, err := loadCore(*corePath, n)
		if err != nil {
			die("load core: %v", err)
		}
		if *gamma > 0 {
			v = pagerank.ScaledCoreJump(n, core, *gamma)
		} else {
			v = pagerank.CoreJump(n, core, 1/float64(n))
		}
	}
	// AllowTruncated: the command prints converged= itself instead of
	// failing on a solve that hits MaxIter.
	cfg := pagerank.Config{Damping: *damping, Epsilon: *epsilon, MaxIter: 1000, AllowTruncated: true, Obs: octx}
	var scores pagerank.Vector
	switch *solver {
	case "jacobi", "gauss-seidel", "power":
		var res *pagerank.Result
		switch *solver {
		case "jacobi":
			res, err = pagerank.Jacobi(g, v, cfg)
		case "gauss-seidel":
			res, err = pagerank.GaussSeidel(g, v, cfg)
		case "power":
			res, err = pagerank.PowerIteration(g, v, cfg)
		}
		if err != nil {
			die("solve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "converged=%v iterations=%d residual=%.2e\n",
			res.Converged, res.Iterations, res.Residual)
		if pipe.Report != nil {
			pipe.Report.Solves = append(pipe.Report.Solves, res.Stats.Summary(*solver, res.Converged))
		}
		scores = res.Scores
	case "montecarlo":
		scores, err = pagerank.MonteCarlo(g, v, pagerank.MonteCarloConfig{
			Damping: *damping, WalksPerNode: *walks, Seed: 1,
		})
		if err != nil {
			die("solve (montecarlo): %v", err)
		}
		fmt.Fprintf(os.Stderr, "montecarlo: %d walks per node\n", *walks)
	default:
		die("unknown solver %q", *solver)
	}
	if pipe.Report != nil {
		pipe.Report.Graph = ginfo
	}
	printScores(scores, n, *damping, *top, *all)
	finish(pipe)
}

func finish(pipe *cliobs.Pipeline) {
	if err := pipe.Close(); err != nil {
		die("observability: %v", err)
	}
}

func printScores(scores pagerank.Vector, n int, damping float64, top int, all bool) {
	scale := float64(n) / (1 - damping)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if all {
		for x := 0; x < n; x++ {
			fmt.Fprintf(w, "%d %.6g\n", x, scores[x]*scale)
		}
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
	if top > n {
		top = n
	}
	fmt.Fprintf(w, "%-12s %12s\n", "node", "scaled score")
	for _, x := range order[:top] {
		fmt.Fprintf(w, "%-12d %12.3f\n", x, scores[x]*scale)
	}
}

func loadCore(path string, n int) ([]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var core []graph.NodeID
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node ID %q: %w", line, err)
		}
		if int(id) >= n {
			return nil, fmt.Errorf("core node %d outside graph of %d nodes", id, n)
		}
		core = append(core, graph.NodeID(id))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(core) == 0 {
		return nil, fmt.Errorf("empty core file %s", path)
	}
	return core, nil
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
