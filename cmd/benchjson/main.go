// Command benchjson converts `go test -bench` output into a JSON
// benchmark summary. It reads the benchmark text from stdin, echoes it
// to stderr so progress stays visible in a pipe, and writes one JSON
// array entry per benchmark name (runs of the same name, e.g. from
// -count=N, are averaged).
//
// Usage:
//
//	go test -run='^$' -bench=10k -benchmem ./internal/mass/ | benchjson -o BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's averaged measurements.
type Entry struct {
	Name string `json:"name"`
	// Runs is how many result lines were averaged (the -count).
	Runs int `json:"runs"`
	// Iterations is the mean b.N of the runs.
	Iterations  float64 `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	EdgesPerSec float64 `json:"edges_per_sec,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "lookups/s") that
	// have no dedicated field, keyed by unit and averaged like the rest.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (default stdout)")
	flag.Parse()

	var order []string
	totals := map[string]*Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		t, seen := totals[e.Name]
		if !seen {
			totals[e.Name] = e
			order = append(order, e.Name)
			continue
		}
		t.Runs += e.Runs
		t.Iterations += e.Iterations
		t.NsPerOp += e.NsPerOp
		t.BytesPerOp += e.BytesPerOp
		t.AllocsPerOp += e.AllocsPerOp
		t.EdgesPerSec += e.EdgesPerSec
		for unit, v := range e.Extra {
			if t.Extra == nil {
				t.Extra = map[string]float64{}
			}
			t.Extra[unit] += v
		}
	}
	if err := sc.Err(); err != nil {
		die("read: %v", err)
	}

	entries := make([]Entry, 0, len(order))
	for _, name := range order {
		t := totals[name]
		n := float64(t.Runs)
		e := Entry{
			Name:        t.Name,
			Runs:        t.Runs,
			Iterations:  t.Iterations / n,
			NsPerOp:     t.NsPerOp / n,
			BytesPerOp:  t.BytesPerOp / n,
			AllocsPerOp: t.AllocsPerOp / n,
			EdgesPerSec: t.EdgesPerSec / n,
		}
		for unit, v := range t.Extra {
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v / n
		}
		entries = append(entries, e)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		die("encode: %v", err)
	}
}

// parseLine extracts one `BenchmarkName-P  N  <value unit>...` result
// line. The GOMAXPROCS suffix is stripped from the name so summaries
// are comparable across machines.
func parseLine(line string) (*Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return nil, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := &Entry{Name: name, Runs: 1, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		case "edges/s":
			e.EdgesPerSec = v
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[fields[i+1]] = v
		}
	}
	if e.NsPerOp == 0 {
		return nil, false
	}
	return e, true
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
