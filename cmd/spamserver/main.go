// Command spamserver serves spam-mass queries over HTTP. It loads a
// host graph, name file, and good core, runs the mass estimator
// (Algorithm 2 inputs), and answers lookups against an immutable
// snapshot that a background refresher atomically replaces — readers
// never block and never see a half-built generation.
//
// Usage:
//
//	spamserver -addr :8080 -graph web.graph -names web.names -core web.core
//	           [-tau 0.98] [-rho 10] [-gamma 0.85] [-damping 0.85]
//	           [-refresh 15m] [-refresh-timeout 5m]
//	           [-delta-watch path.delta] [-delta-poll 2s]
//	           [-wal-dir path] [-compact-every 1m] [-wal-group-commit 0]
//	           [-ingest-queue 16] [-anytime-every 0] [-anytime-walks 100]
//	           [-max-inflight 256] [-timeout 5s] [-max-batch 1000]
//	           [-addr-file path] [-debug-addr :6060] [-v]
//	           [-solver-layout blocked|flat] [-solver-precision float64|float32]
//	           [-metrics=true] [-tracing=true] [-sample-interval 15s]
//	           [-flight-dir path] [-drift-window 12] [-drift-z 4]
//
// Endpoints: GET /v1/host/{name}, POST /v1/batch, GET /v1/top,
// GET /healthz, GET /readyz, POST /admin/refresh, POST /admin/delta,
// GET /admin/status, GET /metrics, GET /admin/timeseries,
// GET /admin/flightrecorder.
//
// With -role=router the process serves the same /v1 API without any
// local snapshot: it fronts a set of shard nodes (each a plain
// spamserver over one partition of the host space, see genweb
// -shards), routing point lookups to the owning shard, fanning
// batches out and reassembling them aligned, and merging per-shard
// rankings. A cross-shard POST /admin/delta is split by owner,
// applied to every replica of each touched shard, and published
// behind a generation fence — the router never serves a generation a
// touched shard has not reached.
//
//	spamserver -role=router -addr :8080 \
//	           -shards 'http://s0a:8081,http://s0b:8082;http://s1a:8083' \
//	           [-hedge-after 100ms] [-probe-interval 1s]
//
// Shards are separated by semicolons, replicas of one shard by
// commas; shard order must match the partitioner (graph.ShardOf with
// n = number of shards).
//
// Telemetry is on by default: /metrics serves the registry in
// Prometheus text format (disable with -metrics=false), every request
// carries a trace ID echoed in X-Trace-Id/Traceparent response
// headers, a ring-buffer sampler keeps a day of metric history behind
// /admin/timeseries, slow and failed requests land in the flight
// recorder behind /admin/flightrecorder (with -flight-dir, failed
// refreshes also dump their span tree to disk), and a drift watchdog
// fingerprints every published epoch, alerting on serve.drift_* and
// /readyz?verbose when the detector's operating point jumps.
//
// Refreshes reload all three input files from disk, so replacing them
// in place and sending SIGHUP (or POST /admin/refresh) picks up a new
// crawl without a restart. A refresh that fails — unreadable inputs,
// solver non-convergence, NaN/Inf in the result — leaves the previous
// snapshot serving. SIGINT/SIGTERM drain in-flight requests before
// exit. -addr-file writes the bound address (useful with -addr :0).
//
// Between full refreshes the graph can evolve incrementally: POST a
// mutation batch in the delta text format to /admin/delta (?wait=1 to
// apply synchronously), or point -delta-watch at a delta file that a
// churn source rewrites — the server polls its mtime every -delta-poll
// and applies the new batch. Each applied batch advances the epoch by
// one; the estimation warm-starts from the previous snapshot's
// vectors, so small-churn batches converge in a fraction of a cold
// rebuild's iterations.
//
// With -wal-dir the ingest path becomes durable: every accepted delta
// batch is fsynced to a segmented write-ahead log before the server
// acknowledges it, a compactor folds the applied prefix into a
// persisted snapshot every -compact-every, and on boot the server
// recovers — last snapshot plus WAL replay — instead of rebuilding
// cold, so kill -9 at any point loses nothing acknowledged. A full
// ingest queue (-ingest-queue) answers 429 + Retry-After.
// -wal-group-commit batches fsyncs across concurrent submitters.
// -anytime-every N additionally serves anytime Monte-Carlo estimates
// (incrementally repaired random walks, -anytime-walks per node)
// between exact warm solves, which then run every N-th batch only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spammass/internal/cliobs"
	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/ingest"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address (use :0 with -addr-file for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file after startup")
	graphPath := flag.String("graph", "", "graph file (binary or text format)")
	namesPath := flag.String("names", "", "host-name file: one name per line")
	corePath := flag.String("core", "", "good-core file: one node ID per line")
	tau := flag.Float64("tau", 0.98, "relative mass threshold τ")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold ρ")
	gamma := flag.Float64("gamma", 0.85, "core jump scaling ‖w‖ = γ")
	damping := flag.Float64("damping", 0.85, "damping factor c")
	refresh := flag.Duration("refresh", 0, "re-estimate from the input files this often (0 = only on SIGHUP / POST /admin/refresh)")
	refreshTimeout := flag.Duration("refresh-timeout", 0, "abort a refresh attempt after this long (0 = unbounded)")
	deltaWatch := flag.String("delta-watch", "", "watch this delta file and apply each new batch incrementally")
	deltaPoll := flag.Duration("delta-poll", 2*time.Second, "poll interval for -delta-watch")
	walDir := flag.String("wal-dir", "", "durability directory: fsync every delta batch to a WAL here before acknowledging, and recover from it on boot")
	compactEvery := flag.Duration("compact-every", time.Minute, "fold the applied WAL prefix into a persisted snapshot this often (needs -wal-dir)")
	groupCommit := flag.Duration("wal-group-commit", 0, "batch WAL fsyncs across submitters arriving within this window (0 = fsync per append)")
	ingestQueue := flag.Int("ingest-queue", 0, "ingest queue capacity before /admin/delta answers 429 (0 = default)")
	anytimeEvery := flag.Int("anytime-every", 0, "serve anytime Monte-Carlo estimates, running the exact warm solve only every N-th batch (0 or 1 = every batch exact)")
	anytimeWalks := flag.Int("anytime-walks", 100, "stored random walks per node for -anytime-every")
	maxInflight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "concurrent /v1/* requests before shedding with 429")
	reqTimeout := flag.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "host limit per POST /v1/batch")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof/ on this address")
	verbose := flag.Bool("v", false, "log refreshes and solver progress to stderr")
	layoutFlag := flag.String("solver-layout", "blocked", "solver adjacency layout: blocked (degree-sorted compressed sweeps) or flat")
	precisionFlag := flag.String("solver-precision", "float64", "solver storage precision: float64, or float32 for mixed-precision blocked sweeps")
	metrics := flag.Bool("metrics", true, "serve Prometheus text exposition at GET /metrics")
	tracing := flag.Bool("tracing", true, "per-request trace IDs, flight recorder, and admin span trees")
	sampleInterval := flag.Duration("sample-interval", 15*time.Second, "metric history sampling interval for /admin/timeseries (0 disables history)")
	flightDir := flag.String("flight-dir", "", "write failed-refresh span trees to this directory")
	driftWindow := flag.Int("drift-window", 12, "trailing epochs the drift watchdog compares against")
	driftZ := flag.Float64("drift-z", 4, "bounded z-score above which an epoch fingerprint counts as drifted")
	role := flag.String("role", "serve", "serve (one local snapshot) or router (front a shard topology)")
	shardsSpec := flag.String("shards", "", "router topology: shards separated by ';', replica URLs within a shard by ','")
	hedgeAfter := flag.Duration("hedge-after", 100*time.Millisecond, "router: race a second replica when a shard reply is this late (0 disables)")
	probeInterval := flag.Duration("probe-interval", time.Second, "router: shard health probe period")
	flag.Parse()
	switch *role {
	case "serve":
		if *graphPath == "" || *namesPath == "" || *corePath == "" {
			die("missing -graph, -names, or -core")
		}
	case "router":
		if *shardsSpec == "" {
			die("-role=router needs -shards")
		}
	default:
		die("unknown -role %q (want serve or router)", *role)
	}
	var layout pagerank.Layout
	switch *layoutFlag {
	case "blocked":
		layout = pagerank.LayoutBlocked
	case "flat":
		layout = pagerank.LayoutFlat
	default:
		die("unknown -solver-layout %q (want blocked or flat)", *layoutFlag)
	}
	var precision pagerank.Precision
	switch *precisionFlag {
	case "float64":
		precision = pagerank.PrecisionFloat64
	case "float32":
		precision = pagerank.PrecisionFloat32
	default:
		die("unknown -solver-precision %q (want float64 or float32)", *precisionFlag)
	}
	if precision == pagerank.PrecisionFloat32 && layout != pagerank.LayoutBlocked {
		die("-solver-precision float32 requires -solver-layout blocked")
	}

	// A server keeps metrics on at all times — they are the interface
	// operators scrape — with logging and the debug endpoint opt-in.
	reg := obs.NewRegistry()
	octx := obs.NewContext(reg, nil)
	if *verbose {
		octx = octx.WithLogf(obs.StderrLogf(os.Stderr))
	}
	if *debugAddr != "" {
		dbg, err := obs.StartDebug(*debugAddr, reg)
		if err != nil {
			die("debug endpoint: %v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars http://%s/debug/pprof/\n", dbg.Addr(), dbg.Addr())
	}

	if *role == "router" {
		if *walDir != "" {
			die("-wal-dir applies to -role=serve; shards own their WALs, the router holds no state")
		}
		runRouter(routerOptions{
			addr:          *addr,
			addrFile:      *addrFile,
			shardsSpec:    *shardsSpec,
			hedgeAfter:    *hedgeAfter,
			probeInterval: *probeInterval,
			maxInflight:   *maxInflight,
			reqTimeout:    *reqTimeout,
			maxBatch:      *maxBatch,
			metrics:       *metrics,
			tracing:       *tracing,
			octx:          octx,
		})
		return
	}

	dcfg := mass.DetectConfig{RelMassThreshold: *tau, ScaledPageRankThreshold: *rho}
	// Solve telemetry: the latest solve's iteration count as a gauge,
	// so convergence regressions show up on a dashboard next to
	// pagerank.iterations_total.
	solveIters := octx.Gauge("pagerank.solve_iterations")
	solver := pagerank.Config{Damping: *damping, Epsilon: 1e-10, MaxIter: 1000, Obs: octx,
		Layout: layout, Precision: precision,
		OnStats: func(st *pagerank.SolveStats) { solveIters.Set(float64(st.Iterations)) }}
	build := func(ctx context.Context, prev *serve.Snapshot, epoch int64) (*serve.Snapshot, error) {
		g, _, err := graph.LoadFile(*graphPath, octx)
		if err != nil {
			return nil, fmt.Errorf("load graph: %w", err)
		}
		names, err := cliobs.LoadLines(*namesPath)
		if err != nil {
			return nil, fmt.Errorf("load names: %w", err)
		}
		h, err := graph.NewHostGraph(g, names)
		if err != nil {
			return nil, fmt.Errorf("host graph: %w", err)
		}
		core, err := cliobs.LoadNodeIDs(*corePath, g.NumNodes())
		if err != nil {
			return nil, fmt.Errorf("load core: %w", err)
		}
		est, err := mass.EstimateFromCore(g, core, mass.Options{Solver: solver, Gamma: *gamma})
		if err != nil {
			return nil, fmt.Errorf("estimate: %w", err)
		}
		return serve.NewSnapshot(h, est, serve.SnapshotConfig{
			Detect:   dcfg,
			Gamma:    *gamma,
			CoreSize: len(core),
			// Carrying the core lets /admin/delta apply batches on top
			// of this snapshot with the core remapped, not reloaded.
			Core: core,
		}, epoch)
	}

	var recorder *obs.Recorder
	if *sampleInterval > 0 {
		recorder = obs.NewRecorder(reg, obs.RecorderConfig{Interval: *sampleInterval})
	}
	var flight *obs.FlightRecorder
	if *tracing {
		flight = obs.NewFlightRecorder(obs.FlightConfig{})
	}
	watchdog := serve.NewWatchdog(serve.WatchdogConfig{
		Window: *driftWindow, ZThreshold: *driftZ, Obs: octx,
	})

	// The delta apply path: the plain warm-solve builder, or — with
	// -anytime-every > 1 — the hybrid builder that serves incrementally
	// repaired Monte-Carlo estimates between exact solves.
	applyDelta := serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: solver, Obs: octx})
	if *anytimeEvery > 1 {
		any, err := ingest.NewAnytime(ingest.AnytimeConfig{
			WalksPerNode: *anytimeWalks,
			ExactEvery:   *anytimeEvery,
			Seed:         1,
			Obs:          octx,
		})
		if err != nil {
			die("anytime estimator: %v", err)
		}
		applyDelta, err = ingest.NewHybridDeltaBuilder(ingest.HybridBuilderConfig{
			Solver: solver, Anytime: any, Obs: octx,
		})
		if err != nil {
			die("hybrid builder: %v", err)
		}
	}

	var pl *ingest.Pipeline
	rcfg := serve.RefresherConfig{
		Interval:   *refresh,
		Timeout:    *refreshTimeout,
		ApplyDelta: applyDelta,
		DeltaQueue: *ingestQueue,
		Obs:        octx,
		Recorder:   recorder,
		Watchdog:   watchdog,
		Flight:     flight,
		FlightDir:  *flightDir,
	}
	if *walDir != "" {
		var err error
		pl, err = ingest.Open(ingest.Config{
			Dir:          *walDir,
			GroupCommit:  *groupCommit,
			CompactEvery: *compactEvery,
			Obs:          octx,
		})
		if err != nil {
			die("opening WAL: %v", err)
		}
		rcfg.Journal = pl
	}

	store := serve.NewStore()
	ref := serve.NewRefresher(store, build, rcfg)
	// Fail fast if the boot cannot produce even one snapshot; after
	// that, refresh failures only log and the old snapshot keeps serving.
	startCtx, startCancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if pl != nil {
		// Durable boot: last persisted snapshot (or the initial build
		// when none exists) plus a WAL replay through the same apply
		// function the live loop uses — kill -9 at any byte offset
		// recovers every acknowledged batch.
		base, baseSeq, err := pl.Latest(dcfg, 0)
		if err != nil {
			startCancel()
			die("loading snapshot: %v", err)
		}
		if base == nil {
			if base, err = build(startCtx, nil, 1); err != nil {
				startCancel()
				die("initial snapshot: %v", err)
			}
			baseSeq = 0
		}
		recovered, replayed, err := pl.Recover(startCtx, base, baseSeq, applyDelta)
		if err != nil {
			startCancel()
			die("WAL recovery: %v", err)
		}
		if err := store.Publish(recovered); err != nil {
			startCancel()
			die("publishing recovered snapshot: %v", err)
		}
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "spamserver: recovered %d WAL batches, serving epoch %d\n", replayed, recovered.Epoch())
		}
	} else if err := ref.Refresh(startCtx); err != nil {
		startCancel()
		die("initial snapshot: %v", err)
	}
	startCancel()

	srv := serve.NewServer(store, ref, serve.Config{
		MaxInFlight:    *maxInflight,
		Timeout:        *reqTimeout,
		MaxBatch:       *maxBatch,
		Obs:            octx,
		Tracing:        *tracing,
		Flight:         flight,
		Recorder:       recorder,
		Watchdog:       watchdog,
		DisableMetrics: !*metrics,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die("listen: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			die("write addr file: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "spamserver: serving %d hosts (epoch %d) on http://%s\n",
		store.Load().NumHosts(), store.Epoch(), ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	runCtx, stopRefresher := context.WithCancel(context.Background())
	refresherDone := make(chan struct{})
	go func() {
		defer close(refresherDone)
		ref.Run(runCtx)
	}()
	if recorder != nil {
		go recorder.Run(runCtx)
	}
	compactorDone := make(chan struct{})
	if pl != nil {
		go func() {
			defer close(compactorDone)
			pl.RunCompactor(runCtx)
		}()
	} else {
		close(compactorDone)
	}
	if *deltaWatch != "" {
		go watchDelta(runCtx, *deltaWatch, *deltaPoll, ref, octx)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				octx.Logf("spamserver: SIGHUP, scheduling refresh")
				ref.Trigger()
				continue
			}
			fmt.Fprintf(os.Stderr, "spamserver: %s, draining\n", sig)
			stopRefresher()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			shutdownErr <- hs.Shutdown(ctx)
			cancel()
			return
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		die("serve: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		die("shutdown: %v", err)
	}
	stopRefresher()
	<-refresherDone
	<-compactorDone
	if pl != nil {
		if err := pl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spamserver: closing WAL: %v\n", err)
		}
	}
}

// watchDelta polls path and enqueues its batch whenever the file
// changes. A file already present at boot is treated as consumed —
// the initial snapshot was just built from the full inputs, so an old
// delta must not be replayed on top of it. Read or submit failures
// log and leave the marker untouched, so the next poll retries.
func watchDelta(ctx context.Context, path string, every time.Duration, ref *serve.Refresher, octx *obs.Context) {
	if every <= 0 {
		every = 2 * time.Second
	}
	type mark struct {
		mtime time.Time
		size  int64
	}
	var last mark
	if fi, err := os.Stat(path); err == nil {
		last = mark{fi.ModTime(), fi.Size()}
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue // not written yet, or mid-rename
		}
		cur := mark{fi.ModTime(), fi.Size()}
		if cur == last {
			continue
		}
		b, err := delta.ReadFile(path)
		if err != nil {
			octx.Logf("spamserver: delta watch: %v", err)
			continue
		}
		if err := ref.SubmitDelta(b); err != nil {
			octx.Logf("spamserver: delta watch: %v", err)
			continue
		}
		octx.Logf("spamserver: delta watch: submitted %d ops from %s", b.NumOps(), path)
		last = cur
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
