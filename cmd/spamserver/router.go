package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spammass/internal/obs"
	"spammass/internal/serve"
	"spammass/internal/shard"
)

// routerOptions is the -role=router slice of the flag set.
type routerOptions struct {
	addr          string
	addrFile      string
	shardsSpec    string
	hedgeAfter    time.Duration
	probeInterval time.Duration
	maxInflight   int
	reqTimeout    time.Duration
	maxBatch      int
	metrics       bool
	tracing       bool
	octx          *obs.Context
}

// parseShards turns "u1,u2;u3" into [[u1 u2] [u3]].
func parseShards(spec string) ([][]string, error) {
	var topo [][]string
	for _, shardSpec := range strings.Split(spec, ";") {
		shardSpec = strings.TrimSpace(shardSpec)
		if shardSpec == "" {
			continue
		}
		var replicas []string
		for _, u := range strings.Split(shardSpec, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			replicas = append(replicas, u)
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("shard %d of -shards has no replica URLs", len(topo))
		}
		topo = append(topo, replicas)
	}
	if len(topo) == 0 {
		return nil, errors.New("-shards names no shards")
	}
	return topo, nil
}

// runRouter is the -role=router main: mount a shard.Router behind the
// stock serve HTTP layer and run the health-probe loop until drained.
func runRouter(opts routerOptions) {
	topo, err := parseShards(opts.shardsSpec)
	if err != nil {
		die("parse -shards: %v", err)
	}
	router, err := shard.NewRouter(shard.Config{
		Shards:        topo,
		HedgeAfter:    opts.hedgeAfter,
		ProbeInterval: opts.probeInterval,
		Obs:           opts.octx,
	})
	if err != nil {
		die("router: %v", err)
	}
	srv := serve.NewServer(nil, nil, serve.Config{
		MaxInFlight:    opts.maxInflight,
		Timeout:        opts.reqTimeout,
		MaxBatch:       opts.maxBatch,
		Obs:            opts.octx,
		Tracing:        opts.tracing,
		DisableMetrics: !opts.metrics,
		Backend:        router,
		Routes: map[string]http.HandlerFunc{
			"POST /admin/delta": router.HandleDelta,
			"GET /admin/status": router.HandleStatus,
		},
	})

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		die("listen: %v", err)
	}
	if opts.addrFile != "" {
		if err := os.WriteFile(opts.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			die("write addr file: %v", err)
		}
	}
	replicas := 0
	for _, urls := range topo {
		replicas += len(urls)
	}
	fmt.Fprintf(os.Stderr, "spamserver: routing %d shards (%d replicas) on http://%s\n",
		len(topo), replicas, ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	runCtx, stopProbes := context.WithCancel(context.Background())
	probesDone := make(chan struct{})
	go func() {
		defer close(probesDone)
		router.Run(runCtx)
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "spamserver: %s, draining\n", sig)
		stopProbes()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		shutdownErr <- hs.Shutdown(ctx)
		cancel()
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		die("serve: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		die("shutdown: %v", err)
	}
	stopProbes()
	<-probesDone
}
