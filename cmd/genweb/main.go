// Command genweb generates a synthetic host-level web graph with
// ground-truth spam labels and writes it to disk: the graph in the
// compact binary format, host names, labels, and the assembled good
// core as plain text companions.
//
// Usage:
//
//	genweb -hosts 150000 -seed 1 -out web
//
// writes web.graph, web.names, web.labels, and web.core.
//
// With -churn N the generator additionally advances the world N spam
// generations (Section 3.4 churn: farms abandoned, fresh ones stood up
// on recycled hosts) and writes each step's mutations as a delta file
// web.delta.1 … web.delta.N — the feed format of spamserver's
// /admin/delta endpoint and -delta-watch flag.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spammass/internal/delta"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/webgen"
)

func main() {
	hosts := flag.Int("hosts", 150000, "number of hosts")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "web", "output path prefix")
	text := flag.Bool("text", false, "write the graph in text format instead of binary")
	churn := flag.Int("churn", 0, "also evolve N spam generations, writing one delta file per step")
	configPath := flag.String("config", "", "read the generator configuration from this JSON file")
	dumpConfig := flag.Bool("dumpconfig", false, "print the default configuration as JSON and exit")
	flag.Parse()

	cfg := webgen.DefaultConfig(*hosts)
	cfg.Seed = *seed
	if *dumpConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			die("dump config: %v", err)
		}
		return
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			die("read config: %v", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			die("parse config: %v", err)
		}
		if err := cfg.Validate(); err != nil {
			die("config: %v", err)
		}
	}
	w, err := webgen.Generate(cfg)
	if err != nil {
		die("generate: %v", err)
	}
	st := graph.ComputeStats(w.Graph)
	fmt.Printf("generated %d hosts, %d edges (no-in %.1f%%, no-out %.1f%%, isolated %.1f%%)\n",
		st.Nodes, st.Edges, 100*st.FracNoInlinks(), 100*st.FracNoOutlinks(), 100*st.FracIsolated())

	writeFile(*out+".graph", func(f *bufio.Writer) error {
		if *text {
			return graph.WriteText(f, w.Graph)
		}
		return graph.WriteBinary(f, w.Graph)
	})
	writeFile(*out+".names", func(f *bufio.Writer) error {
		for _, name := range w.Names {
			if _, err := fmt.Fprintln(f, name); err != nil {
				return err
			}
		}
		return nil
	})
	writeFile(*out+".labels", func(f *bufio.Writer) error {
		for x, info := range w.Info {
			if _, err := fmt.Fprintf(f, "%d %s %s\n", x, info.Kind, info.Community); err != nil {
				return err
			}
		}
		return nil
	})
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		die("assemble core: %v", err)
	}
	writeFile(*out+".core", func(f *bufio.Writer) error {
		for _, x := range core.Nodes {
			if _, err := fmt.Fprintln(f, x); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Printf("wrote %s.graph, %s.names, %s.labels, %s.core (core %d hosts)\n",
		*out, *out, *out, *out, core.Size())

	cur := w
	for i := 1; i <= *churn; i++ {
		next, err := webgen.EvolveSpam(cur, webgen.EvolveConfig{Seed: *seed + int64(i)})
		if err != nil {
			die("churn step %d: %v", i, err)
		}
		oldH, err := graph.NewHostGraph(cur.Graph, cur.Names)
		if err != nil {
			die("churn step %d: %v", i, err)
		}
		newH, err := graph.NewHostGraph(next.Graph, next.Names)
		if err != nil {
			die("churn step %d: %v", i, err)
		}
		b, err := delta.Diff(oldH, newH)
		if err != nil {
			die("churn step %d: diff: %v", i, err)
		}
		path := fmt.Sprintf("%s.delta.%d", *out, i)
		if err := delta.WriteFile(path, b); err != nil {
			die("churn step %d: %v", i, err)
		}
		fmt.Printf("wrote %s (%d ops)\n", path, b.NumOps())
		cur = next
	}
}

func writeFile(path string, fill func(*bufio.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		die("create %s: %v", path, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fill(bw); err != nil {
		die("write %s: %v", path, err)
	}
	if err := bw.Flush(); err != nil {
		die("flush %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		die("close %s: %v", path, err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
