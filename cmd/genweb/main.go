// Command genweb generates a synthetic host-level web graph with
// ground-truth spam labels and writes it to disk: the graph in the
// compact binary format, host names, labels, and the assembled good
// core as plain text companions.
//
// Usage:
//
//	genweb -hosts 150000 -seed 1 -out web
//
// writes web.graph, web.names, web.labels, and web.core.
//
// With -churn N the generator additionally advances the world N spam
// generations (Section 3.4 churn: farms abandoned, fresh ones stood up
// on recycled hosts) and writes each step's mutations as a delta file
// web.delta.1 … web.delta.N — the feed format of spamserver's
// /admin/delta endpoint and -delta-watch flag.
//
// With -churn-stream N the generator writes an ingest soak feed: a
// deterministic timestamped sequence of N delta batch files spread
// evenly over one simulated week of crawl churn, web.stream.00001.delta
// … web.stream.<N>.delta, each headed by a `# t=<RFC3339>` comment,
// plus web.stream.manifest listing `<timestamp>\t<path>` in order. The
// ingest smoke test and durability benchmarks replay this feed.
//
// With -shards N the world is additionally pre-partitioned for the
// sharded serving tier: each shard s gets web.shard<s>.graph,
// web.shard<s>.names, and web.shard<s>.core holding its partition of
// the host space (graph.ShardOf over host names; cross-shard edges
// are dropped, their count reported). Boot one spamserver per shard
// on those files and front them with spamserver -role=router.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"spammass/internal/delta"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/webgen"
)

func main() {
	hosts := flag.Int("hosts", 150000, "number of hosts")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "web", "output path prefix")
	text := flag.Bool("text", false, "write the graph in text format instead of binary")
	churn := flag.Int("churn", 0, "also evolve N spam generations, writing one delta file per step")
	churnStream := flag.Int("churn-stream", 0, "also write N timestamped delta batches spread over one simulated week (ingest soak feed)")
	shards := flag.Int("shards", 0, "also write a pre-partitioned copy for an N-shard serving tier")
	configPath := flag.String("config", "", "read the generator configuration from this JSON file")
	dumpConfig := flag.Bool("dumpconfig", false, "print the default configuration as JSON and exit")
	flag.Parse()

	cfg := webgen.DefaultConfig(*hosts)
	cfg.Seed = *seed
	if *dumpConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			die("dump config: %v", err)
		}
		return
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			die("read config: %v", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			die("parse config: %v", err)
		}
		if err := cfg.Validate(); err != nil {
			die("config: %v", err)
		}
	}
	w, err := webgen.Generate(cfg)
	if err != nil {
		die("generate: %v", err)
	}
	st := graph.ComputeStats(w.Graph)
	fmt.Printf("generated %d hosts, %d edges (no-in %.1f%%, no-out %.1f%%, isolated %.1f%%)\n",
		st.Nodes, st.Edges, 100*st.FracNoInlinks(), 100*st.FracNoOutlinks(), 100*st.FracIsolated())

	writeFile(*out+".graph", func(f *bufio.Writer) error {
		if *text {
			return graph.WriteText(f, w.Graph)
		}
		return graph.WriteBinary(f, w.Graph)
	})
	writeFile(*out+".names", func(f *bufio.Writer) error {
		for _, name := range w.Names {
			if _, err := fmt.Fprintln(f, name); err != nil {
				return err
			}
		}
		return nil
	})
	writeFile(*out+".labels", func(f *bufio.Writer) error {
		for x, info := range w.Info {
			if _, err := fmt.Fprintf(f, "%d %s %s\n", x, info.Kind, info.Community); err != nil {
				return err
			}
		}
		return nil
	})
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		die("assemble core: %v", err)
	}
	writeFile(*out+".core", func(f *bufio.Writer) error {
		for _, x := range core.Nodes {
			if _, err := fmt.Fprintln(f, x); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Printf("wrote %s.graph, %s.names, %s.labels, %s.core (core %d hosts)\n",
		*out, *out, *out, *out, core.Size())

	if *shards > 1 {
		writeShardFiles(*out, w, core.Nodes, *shards, *text)
	}

	cur := w
	for i := 1; i <= *churn; i++ {
		next, b := evolveStep(cur, *seed+int64(i), i)
		path := fmt.Sprintf("%s.delta.%d", *out, i)
		if err := delta.WriteFile(path, b); err != nil {
			die("churn step %d: %v", i, err)
		}
		fmt.Printf("wrote %s (%d ops)\n", path, b.NumOps())
		cur = next
	}

	if *churnStream > 0 {
		writeChurnStream(*out, w, *seed, *churnStream)
	}
}

// evolveStep advances the world one spam generation and returns the
// next world with the delta batch that transforms cur into it.
func evolveStep(cur *webgen.World, seed int64, step int) (*webgen.World, *delta.Batch) {
	next, err := webgen.EvolveSpam(cur, webgen.EvolveConfig{Seed: seed})
	if err != nil {
		die("churn step %d: %v", step, err)
	}
	oldH, err := graph.NewHostGraph(cur.Graph, cur.Names)
	if err != nil {
		die("churn step %d: %v", step, err)
	}
	newH, err := graph.NewHostGraph(next.Graph, next.Names)
	if err != nil {
		die("churn step %d: %v", step, err)
	}
	b, err := delta.Diff(oldH, newH)
	if err != nil {
		die("churn step %d: diff: %v", step, err)
	}
	return next, b
}

// writeChurnStream writes the ingest soak feed: n delta batches evolved
// from the base world, stamped with simulated crawl times spread evenly
// over one week. Everything is derived from the seed and a fixed
// simulated start, so two runs with the same flags produce
// byte-identical feeds. The seeds sit in a disjoint range from -churn's
// so the two sequences differ even when both flags are given.
func writeChurnStream(out string, w *webgen.World, seed int64, n int) {
	const week = 7 * 24 * time.Hour
	start := time.Date(2006, time.March, 6, 0, 0, 0, 0, time.UTC) // fixed simulated crawl start
	step := week / time.Duration(n)
	cur := w
	writeFile(out+".stream.manifest", func(mf *bufio.Writer) error {
		for i := 1; i <= n; i++ {
			var b *delta.Batch
			cur, b = evolveStep(cur, seed+1_000_000+int64(i), i)
			ts := start.Add(time.Duration(i-1) * step)
			path := fmt.Sprintf("%s.stream.%05d.delta", out, i)
			writeFile(path, func(f *bufio.Writer) error {
				if _, err := fmt.Fprintf(f, "# t=%s\n# churn-stream step %d/%d\n", ts.Format(time.RFC3339), i, n); err != nil {
					return err
				}
				return delta.WriteText(f, b)
			})
			if _, err := fmt.Fprintf(mf, "%s\t%s\n", ts.Format(time.RFC3339), path); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Printf("wrote %s.stream.{00001..%05d}.delta + %s.stream.manifest (one simulated week)\n", out, n, out)
}

// writeShardFiles partitions the generated world over n shards with
// the serving tier's partitioner and writes each shard's subgraph,
// names, and core slice. The good core is mapped through the
// partition: a core host lands in the core file of the shard that
// owns it, under its shard-local node ID.
func writeShardFiles(out string, w *webgen.World, core []graph.NodeID, n int, text bool) {
	h, err := graph.NewHostGraph(w.Graph, w.Names)
	if err != nil {
		die("shard partition: %v", err)
	}
	p, err := graph.PartitionHosts(h, n)
	if err != nil {
		die("shard partition: %v", err)
	}
	coreBy := make([][]graph.NodeID, n)
	for _, x := range core {
		s := p.Shard[x]
		coreBy[s] = append(coreBy[s], p.Local[x])
	}
	for s := 0; s < n; s++ {
		part := p.Parts[s]
		prefix := fmt.Sprintf("%s.shard%d", out, s)
		writeFile(prefix+".graph", func(f *bufio.Writer) error {
			if text {
				return graph.WriteText(f, part.Graph)
			}
			return graph.WriteBinary(f, part.Graph)
		})
		writeFile(prefix+".names", func(f *bufio.Writer) error {
			for _, name := range part.Names {
				if _, err := fmt.Fprintln(f, name); err != nil {
					return err
				}
			}
			return nil
		})
		if len(coreBy[s]) == 0 {
			die("shard %d received no good-core hosts; use more hosts or fewer shards", s)
		}
		writeFile(prefix+".core", func(f *bufio.Writer) error {
			for _, x := range coreBy[s] {
				if _, err := fmt.Fprintln(f, x); err != nil {
					return err
				}
			}
			return nil
		})
		fmt.Printf("wrote %s.{graph,names,core}: %d hosts, core %d\n", prefix, len(part.Names), len(coreBy[s]))
	}
	fmt.Printf("partitioned %d shards, %d cross-shard edges dropped\n", n, p.CrossEdges)
}

func writeFile(path string, fill func(*bufio.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		die("create %s: %v", path, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fill(bw); err != nil {
		die("write %s: %v", path, err)
	}
	if err := bw.Flush(); err != nil {
		die("flush %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		die("close %s: %v", path, err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
