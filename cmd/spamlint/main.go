// Command spamlint runs the repo's static-analysis suite
// (internal/analysis) over the whole module and reports every
// violation of the numerical-safety and telemetry invariants.
//
// Usage:
//
//	spamlint [-tags tag,tag] [-list] [-json] [packages]
//
// The package arguments are accepted for familiarity (`spamlint
// ./...`) but the suite always analyzes the full module containing the
// working directory: the invariants are module-wide, and partial runs
// would let findings hide in unlisted packages.
//
// Findings are suppressed per line with
//
//	// lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
// Exit status: 0 clean, 1 findings, 2 load or usage error.
//
// -json switches to a machine-readable report: a JSON array with one
// object per finding (file, line, col, analyzer, message) in a stable
// order (file, line, column, analyzer, message), suitable for diffing
// between runs and for CI artifact upload. Suppressed findings are
// included with their lint:ignore reason, so the report is a complete
// audit of both violations and granted exceptions; the exit status
// still reflects only non-suppressed findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spammass/internal/analysis"
)

// jsonFinding is the -json wire format of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed and Reason report lint:ignore coverage; Reason is the
	// directive's mandatory written justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tags    = flag.String("tags", "", "comma-separated build tags to satisfy (e.g. vectorcheck)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verb    = flag.Bool("v", false, "report package and analyzer progress")
		asJSON  = flag.Bool("json", false, "emit findings (including suppressed ones) as a JSON array")
		jsonOut = flag.String("o", "", "with -json, write the report to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	var tagList []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tagList = append(tagList, t)
		}
	}
	loader, err := analysis.NewLoader(root, tagList...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	if *verb {
		fmt.Fprintf(os.Stderr, "spamlint: loaded %d packages of %s\n", len(pkgs), loader.Module)
	}
	all := analysis.RunAll(analysis.DefaultRules(), pkgs)
	relativize := func(name string) string {
		// Module-relative paths keep the report stable across checkouts
		// (diff-friendly, and CI artifacts don't leak runner paths).
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return name
	}
	open := 0
	for _, d := range all {
		if !d.Suppressed {
			open++
		}
	}
	if *asJSON {
		report := make([]jsonFinding, 0, len(all))
		for _, d := range all {
			report = append(report, jsonFinding{
				File:       relativize(d.Pos.Filename),
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.SuppressReason,
			})
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamlint:", err)
			return 2
		}
		buf = append(buf, '\n')
		if *jsonOut != "" {
			if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "spamlint:", err)
				return 2
			}
		} else {
			os.Stdout.Write(buf)
		}
		if open > 0 {
			fmt.Fprintf(os.Stderr, "spamlint: %d finding(s)\n", open)
			return 1
		}
		return 0
	}
	for _, d := range all {
		if d.Suppressed {
			continue
		}
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if open > 0 {
		fmt.Fprintf(os.Stderr, "spamlint: %d finding(s)\n", open)
		return 1
	}
	return 0
}
