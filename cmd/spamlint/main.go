// Command spamlint runs the repo's static-analysis suite
// (internal/analysis) over the whole module and reports every
// violation of the numerical-safety and telemetry invariants.
//
// Usage:
//
//	spamlint [-tags tag,tag] [-list] [packages]
//
// The package arguments are accepted for familiarity (`spamlint
// ./...`) but the suite always analyzes the full module containing the
// working directory: the invariants are module-wide, and partial runs
// would let findings hide in unlisted packages.
//
// Findings are suppressed per line with
//
//	// lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spammass/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tags = flag.String("tags", "", "comma-separated build tags to satisfy (e.g. vectorcheck)")
		list = flag.Bool("list", false, "list analyzers and exit")
		verb = flag.Bool("v", false, "report package and analyzer progress")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	var tagList []string
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tagList = append(tagList, t)
		}
	}
	loader, err := analysis.NewLoader(root, tagList...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamlint:", err)
		return 2
	}
	if *verb {
		fmt.Fprintf(os.Stderr, "spamlint: loaded %d packages of %s\n", len(pkgs), loader.Module)
	}
	diags := analysis.Run(analysis.DefaultRules(), pkgs)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spamlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
