// Command experiments regenerates every table and figure of the
// paper's evaluation section on a synthetic host graph, plus the
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments [-hosts n] [-seed s] [-run list] [-rho r] [-gamma g]
//
// -run selects experiments by name (comma separated) from:
//
//	fig1 fig2 table1 walkthrough dataset core prdist table2 fig3
//	anomaly fig4 fig5 fig6 absmass expired scaling sweep combined
//	baselines solvers forensics discovery contentfilter adversarial
//	coregrowth stability temporal search granularity trseeds
//
// or "all" (the default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spammass/internal/eval"
	"spammass/internal/experiments"
	"spammass/internal/pagerank"
	"spammass/internal/stats"
)

func main() {
	hosts := flag.Int("hosts", 150000, "number of hosts in the synthetic graph")
	seed := flag.Int64("seed", 1, "generator seed")
	run := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold defining T")
	gamma := flag.Float64("gamma", 0.85, "estimated good fraction for jump scaling")
	sampleFrac := flag.Float64("sample", 0.4, "evaluation sample fraction of T")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	reportPath := flag.String("report", "", "write a markdown reproduction report to this file")
	verbose := flag.Bool("v", false, "print per-iteration solver residual traces to stderr")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Hosts = *hosts
	cfg.Seed = *seed
	cfg.Rho = *rho
	cfg.Gamma = *gamma
	cfg.SampleFrac = *sampleFrac
	if *verbose {
		cfg.Solver.Trace = func(ev pagerank.TraceEvent) {
			fmt.Fprintf(os.Stderr, "%s batch=%d iter=%3d residual=%.3e elapsed=%s\n",
				ev.Algorithm, ev.Batch, ev.Iteration, ev.Residual, ev.Elapsed.Round(time.Microsecond))
		}
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiment %s: %v\n", name, err)
		os.Exit(1)
	}

	// The worked examples need no generated world.
	if want("fig1") {
		if _, err := experiments.RunFigure1(out, []int{0, 1, 2, 3, 5, 10}, cfg.Solver); err != nil {
			fail("fig1", err)
		}
	}
	if want("fig2") {
		if _, err := experiments.RunFigure2(out, cfg.Solver); err != nil {
			fail("fig2", err)
		}
	}
	if want("table1") {
		if _, err := experiments.RunTable1(out, cfg.Solver); err != nil {
			fail("table1", err)
		}
	}
	if want("walkthrough") {
		if _, err := experiments.RunAlgorithm2Walkthrough(out, cfg.Solver); err != nil {
			fail("walkthrough", err)
		}
	}

	if *reportPath != "" {
		selected["dataset"] = true // force environment setup
	}
	needEnv := false
	for _, name := range []string{"dataset", "core", "prdist", "table2", "fig3", "anomaly",
		"fig4", "fig5", "fig6", "absmass", "expired", "scaling", "sweep", "combined",
		"baselines", "solvers", "forensics", "discovery", "contentfilter", "adversarial",
		"coregrowth", "stability", "temporal", "search", "granularity", "trseeds"} {
		if want(name) {
			needEnv = true
		}
	}
	if !needEnv {
		return
	}

	fmt.Fprintf(out, "\ngenerating synthetic host graph (n = %d, seed = %d)...\n", cfg.Hosts, cfg.Seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fail("setup", err)
	}
	defer env.Close()

	if want("dataset") {
		env.RunDataSet(out)
	}
	if want("core") {
		env.RunCore(out)
	}
	if want("prdist") {
		if _, err := env.RunPRDist(out); err != nil {
			fail("prdist", err)
		}
	}
	if want("table2") {
		env.RunTable2(out)
	}
	if *csvDir != "" {
		if err := writeCSVs(env, *csvDir); err != nil {
			fail("csv", err)
		}
		fmt.Fprintf(out, "wrote CSV figure data to %s\n", *csvDir)
	}
	if want("fig3") {
		env.RunFigure3(out)
	}
	if want("anomaly") {
		if _, err := env.RunAnomalyFix(out); err != nil {
			fail("anomaly", err)
		}
	}
	if want("fig4") {
		env.RunFigure4(out)
	}
	if want("fig5") {
		if _, err := env.RunFigure5(out); err != nil {
			fail("fig5", err)
		}
	}
	if want("fig6") {
		if _, err := env.RunFigure6(out); err != nil {
			fail("fig6", err)
		}
	}
	if want("absmass") {
		env.RunAbsMass(out, 20)
	}
	if want("expired") {
		if _, _, err := env.RunExpired(out); err != nil {
			fail("expired", err)
		}
	}
	if want("scaling") {
		if _, err := env.RunScaling(out); err != nil {
			fail("scaling", err)
		}
	}
	if want("sweep") {
		env.RunSweep(out)
	}
	if want("combined") {
		if _, err := env.RunCombined(out); err != nil {
			fail("combined", err)
		}
	}
	if want("baselines") {
		if _, err := env.RunBaselines(out); err != nil {
			fail("baselines", err)
		}
	}
	if want("solvers") {
		if _, err := env.RunSolvers(out); err != nil {
			fail("solvers", err)
		}
	}
	if want("forensics") {
		if _, err := env.RunForensics(out, 40); err != nil {
			fail("forensics", err)
		}
	}
	if want("discovery") {
		if _, err := env.RunAnomalyDiscovery(out); err != nil {
			fail("discovery", err)
		}
	}
	if want("contentfilter") {
		if _, err := env.RunContentFilter(out); err != nil {
			fail("contentfilter", err)
		}
	}
	if want("adversarial") {
		if _, err := env.RunAdversarial(out, []int{0, 5, 10, 25, 50, 100, 250}); err != nil {
			fail("adversarial", err)
		}
	}
	if want("coregrowth") {
		if _, err := env.RunCoreGrowth(out); err != nil {
			fail("coregrowth", err)
		}
	}
	if want("stability") {
		if _, err := env.RunStability(out, 5); err != nil {
			fail("stability", err)
		}
	}
	if want("temporal") {
		if _, err := env.RunTemporal(out); err != nil {
			fail("temporal", err)
		}
	}
	if want("search") {
		if _, err := env.RunSearchImpact(out); err != nil {
			fail("search", err)
		}
	}
	if want("granularity") {
		if _, err := env.RunGranularity(out); err != nil {
			fail("granularity", err)
		}
	}
	if want("trseeds") {
		if _, err := env.RunTrustRankSeeds(out, 30); err != nil {
			fail("trseeds", err)
		}
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fail("report", err)
		}
		if err := env.WriteReport(f, time.Now()); err != nil {
			fail("report", err)
		}
		if err := f.Close(); err != nil {
			fail("report", err)
		}
		fmt.Fprintf(out, "wrote reproduction report to %s\n", *reportPath)
	}
}

// writeCSVs dumps the figure data (groups, precision curves, mass
// histogram, judged sample) for external plotting.
func writeCSVs(env *experiments.Env, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fill func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("groups.csv", func(f *os.File) error {
		return eval.WriteGroupsCSV(f, env.Groups)
	}); err != nil {
		return err
	}
	if err := write("sample.csv", func(f *os.File) error {
		return eval.WriteSampleCSV(f, env.Sample)
	}); err != nil {
		return err
	}
	curves := map[string][]eval.PrecisionPoint{
		"full-core": eval.PrecisionCurve(env.Sample, eval.GroupThresholds(env.Groups)),
	}
	if variants, err := env.RunFigure5(discard{}); err == nil {
		for _, v := range variants {
			curves[v.Name] = v.Points
		}
	}
	if err := write("precision.csv", func(f *os.File) error {
		return eval.WritePrecisionCSV(f, curves)
	}); err != nil {
		return err
	}
	dist, err := eval.AnalyzeMassDistribution(env.Est, eval.DefaultMassDistributionConfig())
	if err != nil {
		return err
	}
	return write("mass_histogram.csv", func(f *os.File) error {
		return eval.WriteHistogramCSV(f, map[string][]stats.Bin{
			"positive": dist.Positive,
			"negative": dist.Negative,
		})
	})
}

// discard is a no-allocation io.Writer for silent experiment reruns.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
