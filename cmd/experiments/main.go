// Command experiments regenerates every table and figure of the
// paper's evaluation section on a synthetic host graph, plus the
// ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments [-hosts n] [-seed s] [-run list] [-rho r] [-gamma g]
//	            [-md-report out.md] [-report out.json] [-trace t.json]
//	            [-debug-addr :6060] [-v]
//
// -run selects experiments by name (comma separated) from:
//
//	fig1 fig2 table1 walkthrough dataset core prdist table2 fig3
//	anomaly fig4 fig5 fig6 absmass expired scaling sweep combined
//	baselines solvers forensics discovery contentfilter adversarial
//	coregrowth stability temporal search granularity trseeds
//
// or "all" (the default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spammass/internal/cliobs"
	"spammass/internal/eval"
	"spammass/internal/experiments"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/stats"
)

func main() {
	hosts := flag.Int("hosts", 150000, "number of hosts in the synthetic graph")
	seed := flag.Int64("seed", 1, "generator seed")
	run := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold defining T")
	gamma := flag.Float64("gamma", 0.85, "estimated good fraction for jump scaling")
	sampleFrac := flag.Float64("sample", 0.4, "evaluation sample fraction of T")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	reportPath := flag.String("md-report", "", "write a markdown reproduction report to this file")
	var ocfg cliobs.Options
	ocfg.Register(flag.CommandLine)
	flag.Parse()

	pipe, err := cliobs.Start("experiments", ocfg, os.Args[1:])
	if err != nil {
		die("observability: %v", err)
	}
	octx := pipe.Ctx

	cfg := experiments.DefaultConfig()
	cfg.Hosts = *hosts
	cfg.Seed = *seed
	cfg.Rho = *rho
	cfg.Gamma = *gamma
	cfg.SampleFrac = *sampleFrac
	cfg.Solver.Obs = octx

	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiment %s: %v\n", name, err)
		os.Exit(1)
	}
	// runExp scopes one experiment: its work gets a span of its own,
	// and the context is re-rooted there so every solver span started
	// while it runs (through the shared estimator) nests under it.
	runExp := func(name string, f func() error) {
		sp := octx.Span("experiment." + name)
		prev := octx.SetRoot(sp)
		err := f()
		octx.SetRoot(prev)
		sp.End()
		if err != nil {
			fail(name, err)
		}
	}

	// The worked examples need no generated world.
	if want("fig1") {
		runExp("fig1", func() error {
			_, err := experiments.RunFigure1(out, []int{0, 1, 2, 3, 5, 10}, cfg.Solver)
			return err
		})
	}
	if want("fig2") {
		runExp("fig2", func() error {
			_, err := experiments.RunFigure2(out, cfg.Solver)
			return err
		})
	}
	if want("table1") {
		runExp("table1", func() error {
			_, err := experiments.RunTable1(out, cfg.Solver)
			return err
		})
	}
	if want("walkthrough") {
		runExp("walkthrough", func() error {
			_, err := experiments.RunAlgorithm2Walkthrough(out, cfg.Solver)
			return err
		})
	}

	if *reportPath != "" {
		selected["dataset"] = true // force environment setup
	}
	needEnv := false
	for _, name := range []string{"dataset", "core", "prdist", "table2", "fig3", "anomaly",
		"fig4", "fig5", "fig6", "absmass", "expired", "scaling", "sweep", "combined",
		"baselines", "solvers", "forensics", "discovery", "contentfilter", "adversarial",
		"coregrowth", "stability", "temporal", "search", "granularity", "trseeds"} {
		if want(name) {
			needEnv = true
		}
	}
	if !needEnv {
		if err := pipe.Close(); err != nil {
			die("observability: %v", err)
		}
		return
	}

	fmt.Fprintf(out, "\ngenerating synthetic host graph (n = %d, seed = %d)...\n", cfg.Hosts, cfg.Seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fail("setup", err)
	}
	defer env.Close()

	if want("dataset") {
		runExp("dataset", func() error { env.RunDataSet(out); return nil })
	}
	if want("core") {
		runExp("core", func() error { env.RunCore(out); return nil })
	}
	if want("prdist") {
		runExp("prdist", func() error { _, err := env.RunPRDist(out); return err })
	}
	if want("table2") {
		runExp("table2", func() error { env.RunTable2(out); return nil })
	}
	if *csvDir != "" {
		runExp("csv", func() error { return writeCSVs(env, *csvDir) })
		fmt.Fprintf(out, "wrote CSV figure data to %s\n", *csvDir)
	}
	if want("fig3") {
		runExp("fig3", func() error { env.RunFigure3(out); return nil })
	}
	if want("anomaly") {
		runExp("anomaly", func() error { _, err := env.RunAnomalyFix(out); return err })
	}
	if want("fig4") {
		runExp("fig4", func() error { env.RunFigure4(out); return nil })
	}
	if want("fig5") {
		runExp("fig5", func() error { _, err := env.RunFigure5(out); return err })
	}
	if want("fig6") {
		runExp("fig6", func() error { _, err := env.RunFigure6(out); return err })
	}
	if want("absmass") {
		runExp("absmass", func() error { env.RunAbsMass(out, 20); return nil })
	}
	if want("expired") {
		runExp("expired", func() error { _, _, err := env.RunExpired(out); return err })
	}
	if want("scaling") {
		runExp("scaling", func() error { _, err := env.RunScaling(out); return err })
	}
	if want("sweep") {
		runExp("sweep", func() error { env.RunSweep(out); return nil })
	}
	if want("combined") {
		runExp("combined", func() error { _, err := env.RunCombined(out); return err })
	}
	if want("baselines") {
		runExp("baselines", func() error { _, err := env.RunBaselines(out); return err })
	}
	if want("solvers") {
		runExp("solvers", func() error { _, err := env.RunSolvers(out); return err })
	}
	if want("forensics") {
		runExp("forensics", func() error { _, err := env.RunForensics(out, 40); return err })
	}
	if want("discovery") {
		runExp("discovery", func() error { _, err := env.RunAnomalyDiscovery(out); return err })
	}
	if want("contentfilter") {
		runExp("contentfilter", func() error { _, err := env.RunContentFilter(out); return err })
	}
	if want("adversarial") {
		runExp("adversarial", func() error {
			_, err := env.RunAdversarial(out, []int{0, 5, 10, 25, 50, 100, 250})
			return err
		})
	}
	if want("coregrowth") {
		runExp("coregrowth", func() error { _, err := env.RunCoreGrowth(out); return err })
	}
	if want("stability") {
		runExp("stability", func() error { _, err := env.RunStability(out, 5); return err })
	}
	if want("temporal") {
		runExp("temporal", func() error { _, err := env.RunTemporal(out); return err })
	}
	if want("search") {
		runExp("search", func() error { _, err := env.RunSearchImpact(out); return err })
	}
	if want("granularity") {
		runExp("granularity", func() error { _, err := env.RunGranularity(out); return err })
	}
	if want("trseeds") {
		runExp("trseeds", func() error { _, err := env.RunTrustRankSeeds(out, 30); return err })
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fail("md-report", err)
		}
		if err := env.WriteReport(f, time.Now()); err != nil {
			fail("md-report", err)
		}
		if err := f.Close(); err != nil {
			fail("md-report", err)
		}
		fmt.Fprintf(out, "wrote reproduction report to %s\n", *reportPath)
	}
	if pipe.Report != nil {
		pipe.Report.Graph = &obs.GraphInfo{
			Format: "synthetic",
			Nodes:  env.World.Graph.NumNodes(),
			Edges:  int64(env.World.Graph.NumEdges()),
		}
		if stats := env.Est.SolveStats; stats != nil {
			pipe.Report.Solves = append(pipe.Report.Solves, stats.Summary("estimate", true))
		}
		dcfg := mass.DetectConfig{RelMassThreshold: 0.98, ScaledPageRankThreshold: cfg.Rho}
		pipe.Report.Mass = mass.ReportSummary(env.Est, len(env.Core.Nodes), cfg.Gamma, dcfg, len(mass.Detect(env.Est, dcfg)))
	}
	if err := pipe.Close(); err != nil {
		die("observability: %v", err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// writeCSVs dumps the figure data (groups, precision curves, mass
// histogram, judged sample) for external plotting.
func writeCSVs(env *experiments.Env, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fill func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("groups.csv", func(f *os.File) error {
		return eval.WriteGroupsCSV(f, env.Groups)
	}); err != nil {
		return err
	}
	if err := write("sample.csv", func(f *os.File) error {
		return eval.WriteSampleCSV(f, env.Sample)
	}); err != nil {
		return err
	}
	curves := map[string][]eval.PrecisionPoint{
		"full-core": eval.PrecisionCurve(env.Sample, eval.GroupThresholds(env.Groups)),
	}
	if variants, err := env.RunFigure5(discard{}); err == nil {
		for _, v := range variants {
			curves[v.Name] = v.Points
		}
	}
	if err := write("precision.csv", func(f *os.File) error {
		return eval.WritePrecisionCSV(f, curves)
	}); err != nil {
		return err
	}
	dist, err := eval.AnalyzeMassDistribution(env.Est, eval.DefaultMassDistributionConfig())
	if err != nil {
		return err
	}
	return write("mass_histogram.csv", func(f *os.File) error {
		return eval.WriteHistogramCSV(f, map[string][]stats.Bin{
			"positive": dist.Positive,
			"negative": dist.Negative,
		})
	})
}

// discard is a no-allocation io.Writer for silent experiment reruns.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
