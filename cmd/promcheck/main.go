// promcheck validates Prometheus text-format (0.0.4) input against the
// strict parser in internal/obs: every # TYPE must precede its samples,
// histogram buckets must be cumulative with +Inf equal to _count, and
// names must be legal. It reads stdin or the files named on the command
// line and exits non-zero on the first invalid input, printing the
// parse error. The obs smoke test uses it to gate /metrics scrapes.
//
// Usage:
//
//	promcheck [file ...]
//	curl -s host:port/metrics | promcheck
package main

import (
	"fmt"
	"io"
	"os"

	"spammass/internal/obs"
)

func check(name string, r io.Reader) error {
	fams, err := obs.ParsePrometheus(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%s: %d metric families OK\n", name, len(fams))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		if err := check("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		err = check(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
	}
}
