// Command spammass runs the full mass-based link-spam detection
// pipeline (Algorithm 2) over a graph file and a good-core file, and
// prints the spam candidates sorted by decreasing relative mass.
//
// Usage:
//
//	spammass -graph web.graph -core web.core [-names web.names]
//	         [-tau 0.98] [-rho 10] [-gamma 0.85] [-top 50] [-explain k]
//	         [-json] [-report out.json] [-trace trace.json]
//	         [-debug-addr :6060] [-v]
//
// With -explain k, the boosting structure behind the top k candidates
// is extracted (reverse PageRank contributions) and allied candidates
// are grouped. -json switches the output to one detection record per
// line (node, host, p, p', M̃, m̃, label) for every node above ρ;
// -report writes a machine-readable RunReport of the whole run and
// -trace the span trace alone, while -debug-addr serves expvar metrics
// and pprof profiles live during the run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spammass/internal/cliobs"
	"spammass/internal/forensics"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// truncate bounds the record list to top entries; top <= 0 keeps all.
func truncate(recs []obs.DetectionRecord, top int) []obs.DetectionRecord {
	if top > 0 && len(recs) > top {
		return recs[:top]
	}
	return recs
}

func main() {
	graphPath := flag.String("graph", "", "graph file (binary or text format)")
	corePath := flag.String("core", "", "good-core file: one node ID per line")
	namesPath := flag.String("names", "", "optional host-name file: one name per line")
	tau := flag.Float64("tau", 0.98, "relative mass threshold τ")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold ρ")
	gamma := flag.Float64("gamma", 0.85, "core jump scaling ‖w‖ = γ")
	damping := flag.Float64("damping", 0.85, "damping factor c")
	top := flag.Int("top", 50, "print at most this many candidates (0 = all)")
	explain := flag.Int("explain", 0, "for the top-k candidates, extract the boosting structure behind them")
	jsonOut := flag.Bool("json", false, "emit detection records as JSON lines instead of a table")
	var ocfg cliobs.Options
	ocfg.Register(flag.CommandLine)
	flag.Parse()
	if *graphPath == "" || *corePath == "" {
		die("missing -graph or -core")
	}

	pipe, err := cliobs.Start("spammass", ocfg, os.Args[1:])
	if err != nil {
		die("observability: %v", err)
	}
	octx := pipe.Ctx

	g, ginfo, err := graph.LoadFile(*graphPath, octx)
	if err != nil {
		die("load graph: %v", err)
	}
	core, err := loadCore(*corePath, g.NumNodes())
	if err != nil {
		die("load core: %v", err)
	}
	var names []string
	if *namesPath != "" {
		if names, err = loadLines(*namesPath); err != nil {
			die("load names: %v", err)
		}
		if len(names) != g.NumNodes() {
			die("%d names for %d nodes", len(names), g.NumNodes())
		}
	}

	opts := mass.Options{
		Solver: pagerank.Config{Damping: *damping, Epsilon: 1e-10, MaxIter: 1000, Obs: octx},
		Gamma:  *gamma,
	}
	es, err := mass.NewEstimator(g, opts)
	if err != nil {
		die("estimate: %v", err)
	}
	defer es.Close()
	est, err := es.EstimateFromCore(core)
	if err != nil {
		die("estimate: %v", err)
	}
	if ocfg.Verbose {
		if stats := est.SolveStats; stats != nil {
			fmt.Fprintf(os.Stderr, "solve: %s\n", stats)
		}
	}
	dcfg := mass.DetectConfig{
		RelMassThreshold:        *tau,
		ScaledPageRankThreshold: *rho,
	}
	cands := mass.DetectWith(est, dcfg, octx)
	fmt.Fprintf(os.Stderr, "%d spam candidates (tau=%.2f, rho=%.1f, core %d hosts)\n",
		len(cands), *tau, *rho, len(core))

	if pipe.Report != nil {
		pipe.Report.Graph = ginfo
		pipe.Report.Solves = append(pipe.Report.Solves,
			est.SolveStats.Summary("estimate", true))
		pipe.Report.Mass = mass.ReportSummary(est, len(core), *gamma, dcfg, len(cands))
		pipe.Report.Detections = truncate(mass.Records(est, dcfg, names), *top)
	}

	w := bufio.NewWriter(os.Stdout)
	if *jsonOut {
		recs := truncate(mass.Records(est, dcfg, names), *top)
		if err := obs.WriteJSONLines(w, recs); err != nil {
			die("encode: %v", err)
		}
	} else {
		printTable(w, cands, names, *top)
		if *explain > 0 {
			printForensics(w, g, est, cands, names, opts, *explain)
		}
	}
	if err := w.Flush(); err != nil {
		die("write: %v", err)
	}
	if err := pipe.Close(); err != nil {
		die("observability: %v", err)
	}
}

func printTable(w *bufio.Writer, cands []mass.Candidate, names []string, top int) {
	fmt.Fprintf(w, "%-10s %12s %10s", "node", "scaled PR", "rel mass")
	if names != nil {
		fmt.Fprintf(w, "  %s", "host")
	}
	fmt.Fprintln(w)
	shown := 0
	for _, c := range cands {
		if top > 0 && shown >= top {
			break
		}
		fmt.Fprintf(w, "%-10d %12.2f %10.4f", c.Node, c.ScaledPageRank, c.RelMass)
		if names != nil {
			fmt.Fprintf(w, "  %s", names[c.Node])
		}
		fmt.Fprintln(w)
		shown++
	}
}

func printForensics(w *bufio.Writer, g *graph.Graph, est *mass.Estimates, cands []mass.Candidate, names []string, opts mass.Options, explain int) {
	nameOf := func(x graph.NodeID) string {
		if names != nil {
			return names[x]
		}
		return fmt.Sprint(x)
	}
	fcfg := forensics.DefaultConfig()
	fcfg.Solver = opts.Solver
	limit := explain
	if limit > len(cands) {
		limit = len(cands)
	}
	farms, alliances, err := forensics.ExtractAll(g, est, cands[:limit], fcfg)
	if err != nil {
		die("explain: %v", err)
	}
	fmt.Fprintln(w, "\nforensics:")
	for _, f := range farms {
		fmt.Fprintf(w, "%s: booster share %.2f, %d supporters", nameOf(f.Target), f.BoosterShare, len(f.Members))
		show := 3
		if show > len(f.Members) {
			show = len(f.Members)
		}
		for _, m := range f.Members[:show] {
			fmt.Fprintf(w, " | %s %.0f%%", nameOf(m.Node), 100*m.Share)
		}
		fmt.Fprintln(w)
	}
	for _, a := range alliances {
		if len(a.Targets) < 2 {
			continue
		}
		fmt.Fprintf(w, "alliance:")
		for _, t := range a.Targets {
			fmt.Fprintf(w, " %s", nameOf(t))
		}
		fmt.Fprintln(w)
	}
}

func loadCore(path string, n int) ([]graph.NodeID, error) {
	lines, err := loadLines(path)
	if err != nil {
		return nil, err
	}
	var core []graph.NodeID
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node ID %q: %w", line, err)
		}
		if int(id) >= n {
			return nil, fmt.Errorf("core node %d outside graph of %d nodes", id, n)
		}
		core = append(core, graph.NodeID(id))
	}
	if len(core) == 0 {
		return nil, fmt.Errorf("empty core file %s", path)
	}
	return core, nil
}

func loadLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out = append(out, strings.TrimSpace(sc.Text()))
	}
	return out, sc.Err()
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
