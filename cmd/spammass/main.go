// Command spammass runs the full mass-based link-spam detection
// pipeline (Algorithm 2) over a graph file and a good-core file, and
// prints the spam candidates sorted by decreasing relative mass.
//
// Usage:
//
//	spammass -graph web.graph -core web.core [-names web.names]
//	         [-tau 0.98] [-rho 10] [-gamma 0.85] [-top 50] [-explain k]
//	         [-json] [-host a.com,b.com] [-report out.json]
//	         [-trace trace.json] [-debug-addr :6060] [-v]
//
// With -explain k, the boosting structure behind the top k candidates
// is extracted (reverse PageRank contributions) and allied candidates
// are grouped. With -host, only the named hosts' detection records are
// printed (one JSON object per line, requires -names) — the offline
// twin of spamserver's GET /v1/host endpoint. -json switches the output to one detection record per
// line (node, host, p, p', M̃, m̃, label) for every node above ρ;
// -report writes a machine-readable RunReport of the whole run and
// -trace the span trace alone, while -debug-addr serves expvar metrics
// and pprof profiles live during the run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"spammass/internal/cliobs"
	"spammass/internal/forensics"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// truncate bounds the record list to top entries; top <= 0 keeps all.
func truncate(recs []obs.DetectionRecord, top int) []obs.DetectionRecord {
	if top > 0 && len(recs) > top {
		return recs[:top]
	}
	return recs
}

func main() {
	graphPath := flag.String("graph", "", "graph file (binary or text format)")
	corePath := flag.String("core", "", "good-core file: one node ID per line")
	namesPath := flag.String("names", "", "optional host-name file: one name per line")
	tau := flag.Float64("tau", 0.98, "relative mass threshold τ")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold ρ")
	gamma := flag.Float64("gamma", 0.85, "core jump scaling ‖w‖ = γ")
	damping := flag.Float64("damping", 0.85, "damping factor c")
	top := flag.Int("top", 50, "print at most this many candidates (0 = all)")
	explain := flag.Int("explain", 0, "for the top-k candidates, extract the boosting structure behind them")
	jsonOut := flag.Bool("json", false, "emit detection records as JSON lines instead of a table")
	hostQuery := flag.String("host", "", "comma-separated host names: print their detection records as JSON lines and exit (requires -names)")
	var ocfg cliobs.Options
	ocfg.Register(flag.CommandLine)
	flag.Parse()
	if *graphPath == "" || *corePath == "" {
		die("missing -graph or -core")
	}
	if *hostQuery != "" && *namesPath == "" {
		die("-host requires -names")
	}

	pipe, err := cliobs.Start("spammass", ocfg, os.Args[1:])
	if err != nil {
		die("observability: %v", err)
	}
	octx := pipe.Ctx

	g, ginfo, err := graph.LoadFile(*graphPath, octx)
	if err != nil {
		die("load graph: %v", err)
	}
	core, err := cliobs.LoadNodeIDs(*corePath, g.NumNodes())
	if err != nil {
		die("load core: %v", err)
	}
	var names []string
	if *namesPath != "" {
		if names, err = cliobs.LoadLines(*namesPath); err != nil {
			die("load names: %v", err)
		}
		if len(names) != g.NumNodes() {
			die("%d names for %d nodes", len(names), g.NumNodes())
		}
	}

	opts := mass.Options{
		Solver: pagerank.Config{Damping: *damping, Epsilon: 1e-10, MaxIter: 1000, Obs: octx},
		Gamma:  *gamma,
	}
	es, err := mass.NewEstimator(g, opts)
	if err != nil {
		die("estimate: %v", err)
	}
	defer es.Close()
	est, err := es.EstimateFromCore(core)
	if err != nil {
		die("estimate: %v", err)
	}
	if ocfg.Verbose {
		if stats := est.SolveStats; stats != nil {
			fmt.Fprintf(os.Stderr, "solve: %s\n", stats)
		}
	}
	dcfg := mass.DetectConfig{
		RelMassThreshold:        *tau,
		ScaledPageRankThreshold: *rho,
	}

	if *hostQuery != "" {
		hosts, err := graph.NewHostGraph(g, names)
		if err != nil {
			die("host index: %v", err)
		}
		var recs []obs.DetectionRecord
		for _, name := range strings.Split(*hostQuery, ",") {
			name = strings.TrimSpace(name)
			x, ok := hosts.NodeByName(name)
			if !ok {
				die("unknown host %q", name)
			}
			recs = append(recs, mass.RecordFor(est, x, dcfg, name))
		}
		w := bufio.NewWriter(os.Stdout)
		if err := obs.WriteJSONLines(w, recs); err != nil {
			die("encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			die("write: %v", err)
		}
		if err := pipe.Close(); err != nil {
			die("observability: %v", err)
		}
		return
	}

	cands := mass.DetectWith(est, dcfg, octx)
	fmt.Fprintf(os.Stderr, "%d spam candidates (tau=%.2f, rho=%.1f, core %d hosts)\n",
		len(cands), *tau, *rho, len(core))

	if pipe.Report != nil {
		pipe.Report.Graph = ginfo
		pipe.Report.Solves = append(pipe.Report.Solves,
			est.SolveStats.Summary("estimate", true))
		pipe.Report.Mass = mass.ReportSummary(est, len(core), *gamma, dcfg, len(cands))
		pipe.Report.Detections = truncate(mass.Records(est, dcfg, names), *top)
	}

	w := bufio.NewWriter(os.Stdout)
	if *jsonOut {
		recs := truncate(mass.Records(est, dcfg, names), *top)
		if err := obs.WriteJSONLines(w, recs); err != nil {
			die("encode: %v", err)
		}
	} else {
		printTable(w, cands, names, *top)
		if *explain > 0 {
			printForensics(w, g, est, cands, names, opts, *explain)
		}
	}
	if err := w.Flush(); err != nil {
		die("write: %v", err)
	}
	if err := pipe.Close(); err != nil {
		die("observability: %v", err)
	}
}

func printTable(w *bufio.Writer, cands []mass.Candidate, names []string, top int) {
	fmt.Fprintf(w, "%-10s %12s %10s", "node", "scaled PR", "rel mass")
	if names != nil {
		fmt.Fprintf(w, "  %s", "host")
	}
	fmt.Fprintln(w)
	shown := 0
	for _, c := range cands {
		if top > 0 && shown >= top {
			break
		}
		fmt.Fprintf(w, "%-10d %12.2f %10.4f", c.Node, c.ScaledPageRank, c.RelMass)
		if names != nil {
			fmt.Fprintf(w, "  %s", names[c.Node])
		}
		fmt.Fprintln(w)
		shown++
	}
}

func printForensics(w *bufio.Writer, g *graph.Graph, est *mass.Estimates, cands []mass.Candidate, names []string, opts mass.Options, explain int) {
	nameOf := func(x graph.NodeID) string {
		if names != nil {
			return names[x]
		}
		return fmt.Sprint(x)
	}
	fcfg := forensics.DefaultConfig()
	fcfg.Solver = opts.Solver
	limit := explain
	if limit > len(cands) {
		limit = len(cands)
	}
	farms, alliances, err := forensics.ExtractAll(g, est, cands[:limit], fcfg)
	if err != nil {
		die("explain: %v", err)
	}
	fmt.Fprintln(w, "\nforensics:")
	for _, f := range farms {
		fmt.Fprintf(w, "%s: booster share %.2f, %d supporters", nameOf(f.Target), f.BoosterShare, len(f.Members))
		show := 3
		if show > len(f.Members) {
			show = len(f.Members)
		}
		for _, m := range f.Members[:show] {
			fmt.Fprintf(w, " | %s %.0f%%", nameOf(m.Node), 100*m.Share)
		}
		fmt.Fprintln(w)
	}
	for _, a := range alliances {
		if len(a.Targets) < 2 {
			continue
		}
		fmt.Fprintf(w, "alliance:")
		for _, t := range a.Targets {
			fmt.Fprintf(w, " %s", nameOf(t))
		}
		fmt.Fprintln(w)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
