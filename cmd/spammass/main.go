// Command spammass runs the full mass-based link-spam detection
// pipeline (Algorithm 2) over a graph file and a good-core file, and
// prints the spam candidates sorted by decreasing relative mass.
//
// Usage:
//
//	spammass -graph web.graph -core web.core [-names web.names]
//	         [-tau 0.98] [-rho 10] [-gamma 0.85] [-top 50] [-explain k]
//
// With -explain k, the boosting structure behind the top k candidates
// is extracted (reverse PageRank contributions) and allied candidates
// are grouped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spammass/internal/forensics"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (binary or text format)")
	corePath := flag.String("core", "", "good-core file: one node ID per line")
	namesPath := flag.String("names", "", "optional host-name file: one name per line")
	tau := flag.Float64("tau", 0.98, "relative mass threshold τ")
	rho := flag.Float64("rho", 10, "scaled PageRank threshold ρ")
	gamma := flag.Float64("gamma", 0.85, "core jump scaling ‖w‖ = γ")
	damping := flag.Float64("damping", 0.85, "damping factor c")
	top := flag.Int("top", 50, "print at most this many candidates (0 = all)")
	explain := flag.Int("explain", 0, "for the top-k candidates, extract the boosting structure behind them")
	jsonOut := flag.Bool("json", false, "emit candidates as JSON lines instead of a table")
	verbose := flag.Bool("v", false, "print per-iteration solver residual traces to stderr")
	flag.Parse()
	if *graphPath == "" || *corePath == "" {
		die("missing -graph or -core")
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		die("load graph: %v", err)
	}
	core, err := loadCore(*corePath, g.NumNodes())
	if err != nil {
		die("load core: %v", err)
	}
	var names []string
	if *namesPath != "" {
		if names, err = loadLines(*namesPath); err != nil {
			die("load names: %v", err)
		}
		if len(names) != g.NumNodes() {
			die("%d names for %d nodes", len(names), g.NumNodes())
		}
	}

	opts := mass.Options{
		Solver: pagerank.Config{Damping: *damping, Epsilon: 1e-10, MaxIter: 1000},
		Gamma:  *gamma,
	}
	if *verbose {
		opts.Solver.Trace = func(ev pagerank.TraceEvent) {
			fmt.Fprintf(os.Stderr, "%s batch=%d iter=%3d residual=%.3e elapsed=%s\n",
				ev.Algorithm, ev.Batch, ev.Iteration, ev.Residual, ev.Elapsed.Round(time.Microsecond))
		}
	}
	es, err := mass.NewEstimator(g, opts)
	if err != nil {
		die("estimate: %v", err)
	}
	defer es.Close()
	est, err := es.EstimateFromCore(core)
	if err != nil {
		die("estimate: %v", err)
	}
	if *verbose {
		if stats := est.SolveStats; stats != nil {
			fmt.Fprintf(os.Stderr, "solve: %s\n", stats)
		}
	}
	cands := mass.Detect(est, mass.DetectConfig{
		RelMassThreshold:        *tau,
		ScaledPageRankThreshold: *rho,
	})
	fmt.Fprintf(os.Stderr, "%d spam candidates (tau=%.2f, rho=%.1f, core %d hosts)\n",
		len(cands), *tau, *rho, len(core))

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *jsonOut {
		enc := json.NewEncoder(w)
		shown := 0
		for _, c := range cands {
			if *top > 0 && shown >= *top {
				break
			}
			row := struct {
				Node     graph.NodeID `json:"node"`
				Host     string       `json:"host,omitempty"`
				ScaledPR float64      `json:"scaled_pagerank"`
				RelMass  float64      `json:"rel_mass"`
			}{Node: c.Node, ScaledPR: c.ScaledPageRank, RelMass: c.RelMass}
			if names != nil {
				row.Host = names[c.Node]
			}
			if err := enc.Encode(row); err != nil {
				die("encode: %v", err)
			}
			shown++
		}
		return
	}
	fmt.Fprintf(w, "%-10s %12s %10s", "node", "scaled PR", "rel mass")
	if names != nil {
		fmt.Fprintf(w, "  %s", "host")
	}
	fmt.Fprintln(w)
	shown := 0
	for _, c := range cands {
		if *top > 0 && shown >= *top {
			break
		}
		fmt.Fprintf(w, "%-10d %12.2f %10.4f", c.Node, c.ScaledPageRank, c.RelMass)
		if names != nil {
			fmt.Fprintf(w, "  %s", names[c.Node])
		}
		fmt.Fprintln(w)
		shown++
	}

	if *explain > 0 {
		nameOf := func(x graph.NodeID) string {
			if names != nil {
				return names[x]
			}
			return fmt.Sprint(x)
		}
		fcfg := forensics.DefaultConfig()
		fcfg.Solver = opts.Solver
		limit := *explain
		if limit > len(cands) {
			limit = len(cands)
		}
		farms, alliances, err := forensics.ExtractAll(g, est, cands[:limit], fcfg)
		if err != nil {
			die("explain: %v", err)
		}
		fmt.Fprintln(w, "\nforensics:")
		for _, f := range farms {
			fmt.Fprintf(w, "%s: booster share %.2f, %d supporters", nameOf(f.Target), f.BoosterShare, len(f.Members))
			show := 3
			if show > len(f.Members) {
				show = len(f.Members)
			}
			for _, m := range f.Members[:show] {
				fmt.Fprintf(w, " | %s %.0f%%", nameOf(m.Node), 100*m.Share)
			}
			fmt.Fprintln(w)
		}
		for _, a := range alliances {
			if len(a.Targets) < 2 {
				continue
			}
			fmt.Fprintf(w, "alliance:")
			for _, t := range a.Targets {
				fmt.Fprintf(w, " %s", nameOf(t))
			}
			fmt.Fprintln(w)
		}
	}
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "SMGR" {
		return graph.ReadBinary(br)
	}
	return graph.ReadText(br)
}

func loadCore(path string, n int) ([]graph.NodeID, error) {
	lines, err := loadLines(path)
	if err != nil {
		return nil, err
	}
	var core []graph.NodeID
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node ID %q: %w", line, err)
		}
		if int(id) >= n {
			return nil, fmt.Errorf("core node %d outside graph of %d nodes", id, n)
		}
		core = append(core, graph.NodeID(id))
	}
	if len(core) == 0 {
		return nil, fmt.Errorf("empty core file %s", path)
	}
	return core, nil
}

func loadLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out = append(out, strings.TrimSpace(sc.Text()))
	}
	return out, sc.Err()
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
